/**
 * @file
 * Durability suite: durable checkpoint save/load/resume byte-identity
 * across cores, topologies, host thread counts, and fault injection; a
 * corrupt-checkpoint fuzzer (bit flips and truncations must be
 * detected and refused with a structured error, never a crash or a
 * silently-wrong resume); the sweep completion journal (replay
 * identity, torn tails, fingerprint mismatch); and in-memory
 * snapshot/restore identity under hierarchical topologies and PDES
 * threading.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "mp/system.hpp"
#include "occam/compiler.hpp"
#include "persist/io.hpp"
#include "sim/experiment.hpp"
#include "sim/journal.hpp"
#include "support/shutdown.hpp"
#include "trace/export.hpp"

namespace {

using namespace qm;

const char *kPipelineSource = R"(var results[2]:
chan a:
chan b:
var total, count:
seq
  total := 0
  count := 0
  par
    seq i = [1 for 16]
      a ! i
    seq j = [1 for 16]
      var x:
      seq
        a ? x
        b ! x * x
    seq k = [1 for 16]
      var y:
      seq
        b ? y
        total := total + y
        count := count + 1
  results[0] := total
  results[1] := count
)";

const occam::CompiledProgram &
pipelineProgram()
{
    static occam::CompiledProgram program =
        occam::compileOccam(kPipelineSource);
    return program;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "persist_test_" + name;
}

/** Every surface a resumed run must reproduce byte-for-byte. */
struct Surfaces
{
    mp::RunResult result;
    std::string stats;
    std::string trace;
    std::vector<std::uint8_t> memory;
};

Surfaces
capture(mp::System &system, const mp::RunResult &result)
{
    Surfaces s;
    s.result = result;
    s.stats = system.stats().render();
    s.trace = trace::chromeTraceJson(system.tracer());
    system.memory().snapshotTo(s.memory);
    return s;
}

void
expectIdentical(const Surfaces &a, const Surfaces &b)
{
    EXPECT_EQ(a.result.completed, b.result.completed);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.instructions, b.result.instructions);
    EXPECT_EQ(a.result.contexts, b.result.contexts);
    EXPECT_EQ(a.result.rendezvous, b.result.rendezvous);
    EXPECT_EQ(a.result.contextSwitches, b.result.contextSwitches);
    EXPECT_EQ(a.result.utilization, b.result.utilization);
    EXPECT_EQ(a.result.computeCycles, b.result.computeCycles);
    EXPECT_EQ(a.result.kernelCycles, b.result.kernelCycles);
    EXPECT_EQ(a.result.blockedCycles, b.result.blockedCycles);
    EXPECT_EQ(a.result.busCycles, b.result.busCycles);
    EXPECT_EQ(a.result.watchdogTripped, b.result.watchdogTripped);
    EXPECT_EQ(a.result.failureReason, b.result.failureReason);
    EXPECT_EQ(a.result.faultsInjected, b.result.faultsInjected);
    EXPECT_EQ(a.result.faultRecoveries, b.result.faultRecoveries);
    EXPECT_EQ(a.result.traceDropped, b.result.traceDropped);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.memory, b.memory);
}

/**
 * Drive one full run that persists its @p target_snapshot-th snapshot
 * to @p path (the last one if the run snapshots fewer times), and
 * return the uninterrupted run's surfaces.
 */
Surfaces
runSaving(const mp::SystemConfig &config, const std::string &path,
          int target_snapshot)
{
    const occam::CompiledProgram &program = pipelineProgram();
    mp::System system(program.object, config);
    int seen = 0;
    system.setCheckpointSink([&](mp::System &s) {
        ++seen;
        // Persist the target snapshot, then keep overwriting until a
        // later one passes it (covers "last one wins" too).
        if (seen <= target_snapshot) {
            persist::Status st = s.saveCheckpoint(path);
            ASSERT_TRUE(st.ok()) << st.toString();
        }
    });
    mp::RunResult result = system.run(program.mainLabel);
    EXPECT_TRUE(result.completed) << result.failureReason;
    EXPECT_GE(seen, 1);
    return capture(system, result);
}

/** Warm-start from @p path under @p config and return the surfaces. */
Surfaces
resumeFrom(const mp::SystemConfig &config, const std::string &path)
{
    const occam::CompiledProgram &program = pipelineProgram();
    mp::System system(program.object, config);
    persist::Status st = system.loadCheckpoint(path);
    EXPECT_TRUE(st.ok()) << st.toString();
    mp::RunResult result = system.resume();
    EXPECT_TRUE(result.completed) << result.failureReason;
    return capture(system, result);
}

mp::SystemConfig
baseConfig(int pes)
{
    mp::SystemConfig config;
    config.numPes = pes;
    config.recovery.enabled = true;
    config.recovery.checkpointEvery = 150;
    config.traceConfig.enabled = true;
    return config;
}

// ---------------------------------------------------------------------------
// Durable checkpoint: resume byte-identity.
// ---------------------------------------------------------------------------

struct ResumeCase
{
    const char *name;
    const char *topology;  ///< nullptr = default flat ring.
    int pes;
    mp::SimCore saveCore;
    mp::SimCore resumeCore;
    int resumeThreads;
};

class DurableResumeTest : public ::testing::TestWithParam<ResumeCase>
{
};

TEST_P(DurableResumeTest, ResumeMatchesUninterruptedRun)
{
    const ResumeCase &c = GetParam();
    std::string path = tempPath(std::string("resume_") + c.name + ".qmc");
    mp::SystemConfig save_config = baseConfig(c.pes);
    save_config.core = c.saveCore;
    if (c.topology)
        save_config.setTopology(mp::parseTopology(c.topology));
    // Resume every prefix: the 1st, 2nd, ... snapshot must each warm-
    // start into the same completed run the uninterrupted one saw.
    for (int target = 1; target <= 3; ++target) {
        Surfaces full = runSaving(save_config, path, target);
        mp::SystemConfig resume_config = save_config;
        resume_config.core = c.resumeCore;
        resume_config.hostThreads = c.resumeThreads;
        Surfaces resumed = resumeFrom(resume_config, path);
        expectIdentical(full, resumed);
    }
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, DurableResumeTest,
    ::testing::Values(
        ResumeCase{"flat_event", nullptr, 4, mp::SimCore::Event,
                   mp::SimCore::Event, 1},
        ResumeCase{"flat_cross_core", nullptr, 4, mp::SimCore::Tick,
                   mp::SimCore::Event, 1},
        ResumeCase{"flat_cross_core_rev", nullptr, 4, mp::SimCore::Event,
                   mp::SimCore::Tick, 1},
        ResumeCase{"ring4_threads2", "ring:4", 8, mp::SimCore::Event,
                   mp::SimCore::Event, 2},
        ResumeCase{"rings2x2_threads4", "rings:2x2", 8,
                   mp::SimCore::Event, mp::SimCore::Event, 4},
        ResumeCase{"rings2x2_from_tick", "rings:2x2", 8,
                   mp::SimCore::Tick, mp::SimCore::Event, 4}),
    [](const ::testing::TestParamInfo<ResumeCase> &info) {
        return info.param.name;
    });

TEST(DurableResumeTest, FaultInjectedResumeMatchesUninterrupted)
{
    // The injector's SplitMix64 stream state is persisted, so the
    // resumed run draws the same fault schedule the uninterrupted one
    // drew past the snapshot point.
    std::string path = tempPath("resume_faults.qmc");
    mp::SystemConfig config = baseConfig(4);
    config.faultPlan =
        fault::parseFaultPlan("seed=42,rate=0.01,kinds=drop+delay");
    Surfaces full = runSaving(config, path, 2);
    Surfaces resumed = resumeFrom(config, path);
    expectIdentical(full, resumed);
    std::remove(path.c_str());
}

TEST(DurableResumeTest, MismatchedConfigRefused)
{
    std::string path = tempPath("resume_mismatch.qmc");
    mp::SystemConfig config = baseConfig(4);
    runSaving(config, path, 1);

    const occam::CompiledProgram &program = pipelineProgram();
    mp::SystemConfig other = baseConfig(8);  // different machine shape
    mp::System system(program.object, other);
    persist::Status st = system.loadCheckpoint(path);
    EXPECT_EQ(st.code, persist::ErrCode::Mismatch);
    EXPECT_NE(st.message.find("pes=4"), std::string::npos)
        << st.toString();
    // The refused system is still cold and runnable.
    mp::RunResult result = system.run(program.mainLabel);
    EXPECT_TRUE(result.completed) << result.failureReason;
    std::remove(path.c_str());
}

TEST(DurableResumeTest, LoadAfterBootRefused)
{
    std::string path = tempPath("resume_booted.qmc");
    mp::SystemConfig config = baseConfig(4);
    runSaving(config, path, 1);

    const occam::CompiledProgram &program = pipelineProgram();
    mp::System system(program.object, config);
    mp::RunResult result = system.run(program.mainLabel);
    ASSERT_TRUE(result.completed);
    persist::Status st = system.loadCheckpoint(path);
    EXPECT_EQ(st.code, persist::ErrCode::Mismatch);
    std::remove(path.c_str());
}

TEST(DurableResumeTest, SaveWithoutRecoveryRefused)
{
    const occam::CompiledProgram &program = pipelineProgram();
    mp::SystemConfig config;
    config.numPes = 2;
    mp::System system(program.object, config);
    persist::Status st = system.saveCheckpoint(tempPath("never.qmc"));
    EXPECT_EQ(st.code, persist::ErrCode::Mismatch);
}

// ---------------------------------------------------------------------------
// Corrupt-checkpoint fuzzer: detected, refused, cold start survives.
// ---------------------------------------------------------------------------

TEST(CorruptCheckpointTest, BitFlipsDetectedAndRefused)
{
    std::string path = tempPath("fuzz_flip.qmc");
    mp::SystemConfig config = baseConfig(4);
    runSaving(config, path, 2);
    std::vector<std::uint8_t> image;
    ASSERT_TRUE(persist::readFile(path, image).ok());
    ASSERT_GT(image.size(), 64u);

    const occam::CompiledProgram &program = pipelineProgram();
    // Deterministic sweep: flip one bit every 97 bytes (hits header,
    // tags, lengths, CRCs, and payload bytes across every section).
    int checked = 0;
    for (std::size_t pos = 0; pos < image.size(); pos += 97) {
        std::vector<std::uint8_t> bad = image;
        bad[pos] ^= 1u << (pos % 8);
        ASSERT_TRUE(persist::writeFileAtomic(path, bad).ok());
        mp::System system(program.object, config);
        persist::Status st = system.loadCheckpoint(path);
        EXPECT_FALSE(st.ok()) << "undetected bit flip at byte " << pos;
        EXPECT_FALSE(st.message.empty());
        // A refused load leaves the system cold: it must boot and run.
        // Actually running every case would dominate the suite, so
        // spot-check a sample (detection itself is checked for all).
        if (checked++ % 16 == 0) {
            mp::RunResult result = system.run(program.mainLabel);
            EXPECT_TRUE(result.completed) << result.failureReason;
        }
    }
    std::remove(path.c_str());
}

TEST(CorruptCheckpointTest, TruncationsDetectedAndRefused)
{
    std::string path = tempPath("fuzz_trunc.qmc");
    mp::SystemConfig config = baseConfig(4);
    runSaving(config, path, 2);
    std::vector<std::uint8_t> image;
    ASSERT_TRUE(persist::readFile(path, image).ok());

    const occam::CompiledProgram &program = pipelineProgram();
    // Every prefix length along a stride, plus the boundary cases.
    std::vector<std::size_t> cuts = {0, 1, 7, 8, 23, 24};
    for (std::size_t cut = 31; cut < image.size(); cut += 211)
        cuts.push_back(cut);
    int checked = 0;
    for (std::size_t cut : cuts) {
        std::vector<std::uint8_t> bad(image.begin(),
                                      image.begin() +
                                          static_cast<long>(cut));
        ASSERT_TRUE(persist::writeFileAtomic(path, bad).ok());
        mp::System system(program.object, config);
        persist::Status st = system.loadCheckpoint(path);
        EXPECT_FALSE(st.ok()) << "undetected truncation at " << cut;
        if (checked++ % 16 == 0) {
            mp::RunResult result = system.run(program.mainLabel);
            EXPECT_TRUE(result.completed) << result.failureReason;
        }
    }
    std::remove(path.c_str());
}

TEST(CorruptCheckpointTest, MissingFileIsIoError)
{
    const occam::CompiledProgram &program = pipelineProgram();
    mp::SystemConfig config = baseConfig(2);
    mp::System system(program.object, config);
    persist::Status st =
        system.loadCheckpoint(tempPath("does_not_exist.qmc"));
    EXPECT_EQ(st.code, persist::ErrCode::Io);
}

// ---------------------------------------------------------------------------
// Sweep journal.
// ---------------------------------------------------------------------------

std::vector<sim::RunSpec>
journalSpecs(int n)
{
    std::vector<sim::RunSpec> specs;
    for (int i = 0; i < n; ++i) {
        sim::RunSpec spec;
        spec.program = &pipelineProgram();
        spec.resultArray = "results";
        spec.expected = {1496, 16};
        spec.pes = i + 1;
        specs.push_back(std::move(spec));
    }
    return specs;
}

TEST(SweepJournalTest, RunReportCodecRoundTrips)
{
    sim::RunReport report;
    report.pes = 5;
    report.completed = true;
    report.verified = true;
    report.cycles = 1234;
    report.instructions = 987;
    report.utilization = 0.625;
    report.failureReason = "none really";
    report.replays = 2;
    report.attempts = 3;
    report.quarantined = true;
    report.faultKinds[1].injected = 7;
    report.hostWallMs = 12.5;
    report.stats.inc("sys.checkpoints");
    report.stats.record("queue.depth", 4);

    persist::Encoder enc;
    sim::encodeRunReport(enc, report);
    persist::Decoder dec(enc.bytes());
    sim::RunReport back = sim::decodeRunReport(dec);
    ASSERT_TRUE(dec.ok()) << dec.error();
    EXPECT_TRUE(dec.atEnd());
    EXPECT_EQ(back.pes, report.pes);
    EXPECT_EQ(back.completed, report.completed);
    EXPECT_EQ(back.verified, report.verified);
    EXPECT_EQ(back.cycles, report.cycles);
    EXPECT_EQ(back.instructions, report.instructions);
    EXPECT_EQ(back.utilization, report.utilization);
    EXPECT_EQ(back.failureReason, report.failureReason);
    EXPECT_EQ(back.replays, report.replays);
    EXPECT_EQ(back.attempts, report.attempts);
    EXPECT_EQ(back.quarantined, report.quarantined);
    EXPECT_EQ(back.faultKinds[1].injected, 7u);
    EXPECT_EQ(back.hostWallMs, report.hostWallMs);
    EXPECT_EQ(back.stats.render(), report.stats.render());
}

TEST(SweepJournalTest, RecordsSurviveReopen)
{
    std::string path = tempPath("journal_reopen.journal");
    std::remove(path.c_str());
    std::vector<sim::RunSpec> specs = journalSpecs(3);

    sim::SweepJournal journal;
    ASSERT_TRUE(journal.open(path, "unit", specs).ok());
    EXPECT_EQ(journal.completedCount(), 0u);
    sim::RunReport r0;
    r0.pes = 1;
    r0.completed = true;
    ASSERT_TRUE(journal.record(0, r0).ok());
    sim::RunReport r2;
    r2.pes = 3;
    r2.failureReason = "watchdog: stuck";
    ASSERT_TRUE(journal.record(2, r2).ok());

    sim::SweepJournal again;
    ASSERT_TRUE(again.open(path, "unit", specs).ok());
    EXPECT_EQ(again.completedCount(), 2u);
    EXPECT_TRUE(again.has(0));
    EXPECT_FALSE(again.has(1));
    ASSERT_TRUE(again.has(2));
    EXPECT_TRUE(again.get(0).journalReplayed);
    EXPECT_EQ(again.get(2).failureReason, "watchdog: stuck");
    std::remove(path.c_str());
}

TEST(SweepJournalTest, TornTailIsCleanEnd)
{
    std::string path = tempPath("journal_torn.journal");
    std::remove(path.c_str());
    std::vector<sim::RunSpec> specs = journalSpecs(2);
    {
        sim::SweepJournal journal;
        ASSERT_TRUE(journal.open(path, "torn", specs).ok());
        sim::RunReport r;
        r.pes = 1;
        r.completed = true;
        ASSERT_TRUE(journal.record(0, r).ok());
    }
    // Simulate kill -9 mid-append: half a record marker at the tail.
    {
        std::FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        std::fputc(0x52, f);
        std::fputc(0x45, f);
        std::fclose(f);
    }
    sim::SweepJournal journal;
    ASSERT_TRUE(journal.open(path, "torn", specs).ok());
    EXPECT_FALSE(journal.recreated());
    EXPECT_EQ(journal.completedCount(), 1u);
    EXPECT_TRUE(journal.has(0));
    // And the journal still accepts appends after the torn tail.
    sim::RunReport r;
    r.pes = 2;
    EXPECT_TRUE(journal.record(1, r).ok());
    std::remove(path.c_str());
}

TEST(SweepJournalTest, DifferentSweepRefused)
{
    std::string path = tempPath("journal_mismatch.journal");
    std::remove(path.c_str());
    std::vector<sim::RunSpec> specs = journalSpecs(2);
    {
        sim::SweepJournal journal;
        ASSERT_TRUE(journal.open(path, "sweep-a", specs).ok());
    }
    sim::SweepJournal journal;
    persist::Status st = journal.open(path, "sweep-b", specs);
    EXPECT_EQ(st.code, persist::ErrCode::Mismatch);
    std::remove(path.c_str());
}

TEST(SweepJournalTest, CorruptHeaderRecreated)
{
    std::string path = tempPath("journal_corrupt.journal");
    std::remove(path.c_str());
    std::vector<sim::RunSpec> specs = journalSpecs(2);
    {
        sim::SweepJournal journal;
        ASSERT_TRUE(journal.open(path, "corrupt", specs).ok());
        sim::RunReport r;
        r.pes = 1;
        ASSERT_TRUE(journal.record(0, r).ok());
    }
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fputc('X', f);  // clobber the magic
        std::fclose(f);
    }
    sim::SweepJournal journal;
    ASSERT_TRUE(journal.open(path, "corrupt", specs).ok());
    EXPECT_TRUE(journal.recreated());
    EXPECT_EQ(journal.completedCount(), 0u);
    std::remove(path.c_str());
}

TEST(SweepJournalTest, RunAllReplaysJournaledRows)
{
    std::string dir = ::testing::TempDir();
    std::vector<sim::RunSpec> specs = journalSpecs(3);
    sim::RunPolicy policy;
    policy.journalPath = dir + "persist_test_runall.journal";
    policy.journalLabel = "runall";
    std::remove(policy.journalPath.c_str());

    std::vector<sim::RunReport> first = sim::runAll(specs, 1, policy);
    ASSERT_EQ(first.size(), 3u);
    for (const sim::RunReport &r : first) {
        EXPECT_TRUE(r.verified);
        EXPECT_FALSE(r.journalReplayed);
    }
    std::vector<sim::RunReport> second = sim::runAll(specs, 2, policy);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(second[i].journalReplayed);
        EXPECT_EQ(second[i].cycles, first[i].cycles);
        EXPECT_EQ(second[i].stats.render(), first[i].stats.render());
    }
    std::remove(policy.journalPath.c_str());
}

TEST(SweepJournalTest, ShutdownMarksRemainingSpecsInterrupted)
{
    support::requestShutdown();
    std::vector<sim::RunReport> reports =
        sim::runAll(journalSpecs(2), 1);
    support::clearShutdown();
    ASSERT_EQ(reports.size(), 2u);
    for (const sim::RunReport &r : reports) {
        EXPECT_TRUE(r.hostAborted);
        EXPECT_FALSE(r.completed);
        EXPECT_NE(r.failureReason.find("interrupted:"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// In-memory snapshot/restore identity (hierarchical + threaded).
// ---------------------------------------------------------------------------

struct RestoreCase
{
    const char *name;
    const char *topology;  ///< nullptr = default flat ring.
    int pes;
    int threads;
};

class RestoreIdentityTest : public ::testing::TestWithParam<RestoreCase>
{
};

TEST_P(RestoreIdentityTest, ReplayFromCheckpointMatchesOriginal)
{
    const RestoreCase &c = GetParam();
    mp::SystemConfig config = baseConfig(c.pes);
    config.hostThreads = c.threads;
    if (c.topology)
        config.setTopology(mp::parseTopology(c.topology));

    const occam::CompiledProgram &program = pipelineProgram();
    mp::System system(program.object, config);
    mp::RunResult result = system.run(program.mainLabel);
    ASSERT_TRUE(result.completed) << result.failureReason;
    Surfaces original = capture(system, result);

    // Roll back to the last periodic checkpoint and re-drive the tail:
    // a fault-free replay must land on the identical end state.
    ASSERT_TRUE(system.canRestore());
    system.restore();
    mp::RunResult replayed = system.resume();
    ASSERT_TRUE(replayed.completed) << replayed.failureReason;
    expectIdentical(original, capture(system, replayed));
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, RestoreIdentityTest,
    ::testing::Values(RestoreCase{"flat", nullptr, 4, 1},
                      RestoreCase{"flat_threads2", nullptr, 4, 2},
                      RestoreCase{"ring4_threads2", "ring:4", 8, 2},
                      RestoreCase{"rings2x2", "rings:2x2", 8, 1},
                      RestoreCase{"rings2x2_threads4", "rings:2x2", 8, 4},
                      RestoreCase{"rings4x2_threads2", "rings:4x2", 8, 2}),
    [](const ::testing::TestParamInfo<RestoreCase> &info) {
        return info.param.name;
    });

// ---------------------------------------------------------------------------
// persist primitives.
// ---------------------------------------------------------------------------

TEST(PersistIoTest, ContainerRoundTripsAndLocalizesCorruption)
{
    std::vector<persist::Section> sections;
    sections.push_back({"AAAA", {1, 2, 3}});
    sections.push_back({"BBBB", {}});
    sections.push_back({"CCCC", std::vector<std::uint8_t>(1000, 0xAB)});
    std::vector<std::uint8_t> image =
        persist::buildContainer("TESTMAG1", 3, sections);

    std::vector<persist::Section> back;
    ASSERT_TRUE(persist::parseContainer(image, "TESTMAG1", 3, back).ok());
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[0].tag, "AAAA");
    EXPECT_EQ(back[2].payload, sections[2].payload);

    persist::Status st = persist::parseContainer(image, "OTHERMAG", 3,
                                                 back);
    EXPECT_EQ(st.code, persist::ErrCode::BadMagic);
    st = persist::parseContainer(image, "TESTMAG1", 4, back);
    EXPECT_EQ(st.code, persist::ErrCode::BadVersion);

    std::vector<std::uint8_t> flipped = image;
    flipped[flipped.size() - 4] ^= 0x10;  // inside CCCC's payload
    st = persist::parseContainer(flipped, "TESTMAG1", 3, back);
    EXPECT_EQ(st.code, persist::ErrCode::BadChecksum);
    EXPECT_NE(st.message.find("CCCC"), std::string::npos)
        << st.toString();
}

TEST(PersistIoTest, AtomicWriteReplacesWholeFile)
{
    std::string path = tempPath("atomic.bin");
    ASSERT_TRUE(persist::writeFileAtomic(path, {1, 2, 3, 4}).ok());
    ASSERT_TRUE(persist::writeFileAtomic(path, {9}).ok());
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(persist::readFile(path, back).ok());
    EXPECT_EQ(back, std::vector<std::uint8_t>{9});
    std::remove(path.c_str());
}

TEST(PersistIoTest, DecoderIsStickyAndBounded)
{
    persist::Encoder enc;
    enc.u32(7);
    persist::Decoder dec(enc.bytes());
    EXPECT_EQ(dec.u32(), 7u);
    EXPECT_TRUE(dec.atEnd());
    EXPECT_EQ(dec.u64(), 0u);  // past the end: fails, returns zero
    EXPECT_FALSE(dec.ok());
    EXPECT_EQ(dec.u32(), 0u);  // sticky
    EXPECT_FALSE(dec.error().empty());
}

} // namespace
