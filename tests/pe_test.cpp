/**
 * @file
 * Tests for the queue-machine processing element (thesis Chapter 5):
 * window-register translation, presence bits, queue pages, instruction
 * semantics, and the blocking host protocol.
 */
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "pe/memory.hpp"
#include "pe/pe.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace qm;
using namespace qm::isa;
using namespace qm::pe;

constexpr Addr kPage = 0x1000;  // queue page base used by the tests

/** Run until fret/rett or @p max_steps instructions. */
long
run(ProcessingElement &pe, int max_steps = 1000)
{
    long cycles = 0;
    for (int i = 0; i < max_steps; ++i) {
        StepResult r = pe.step();
        cycles += r.cycles;
        if (r.status == StepStatus::Returned ||
            r.status == StepStatus::ContextEnd)
            return cycles;
        EXPECT_EQ(r.status, StepStatus::Executed);
    }
    ADD_FAILURE() << "program did not terminate";
    return cycles;
}

struct Fixture
{
    Memory memory{1 << 16};
    NullHost host;
    ObjectCode code;
    ProcessingElement pe;

    explicit Fixture(const std::string &source)
        : code(assemble(source)), pe(memory, code, host)
    {
        ContextState state;
        state.pc = 0;
        state.qp = kPage;
        state.pom = pomForPageWords(64);
        pe.loadContext(state);
    }
};

TEST(Memory, WordRoundTripLittleEndian)
{
    Memory memory(64);
    memory.writeWord(8, 0x11223344);
    EXPECT_EQ(memory.readWord(8), 0x11223344u);
    EXPECT_EQ(memory.readByte(8), 0x44);
    EXPECT_EQ(memory.readByte(11), 0x11);
}

TEST(Memory, ChecksAlignmentAndBounds)
{
    Memory memory(64);
    EXPECT_THROW(memory.readWord(2), FatalError);
    EXPECT_THROW(memory.readWord(64), FatalError);
    EXPECT_THROW(memory.readByte(64), FatalError);
}

TEST(Pom, PageSizeEncoding)
{
    EXPECT_EQ(pomForPageWords(32), 0xE0u);
    EXPECT_EQ(pomForPageWords(64), 0xC0u);
    EXPECT_EQ(pomForPageWords(128), 0x80u);
    EXPECT_EQ(pomForPageWords(256), 0x00u);
    EXPECT_EQ(pageWordsForPom(0xE0), 32);
    EXPECT_EQ(pageWordsForPom(0x00), 256);
    EXPECT_THROW(pomForPageWords(16), FatalError);
    EXPECT_THROW(pomForPageWords(48), FatalError);
}

TEST(Pe, ArithmeticWithImmediates)
{
    Fixture f(
        "  plus #3,#4 :r17\n"
        "  minus r17,#10 :r18\n"
        "  mul r18,r18 :r19\n"
        "  fret\n");
    run(f.pe);
    EXPECT_EQ(f.pe.readReg(17), 7u);
    EXPECT_EQ(static_cast<SWord>(f.pe.readReg(18)), -3);
    EXPECT_EQ(f.pe.readReg(19), 9u);
}

TEST(Pe, QueueDisciplineThesisExample)
{
    // plus++ r0,r1 :r0,r2 consumes two queue operands and fans the sum
    // out to the new front and front+2 (section 5.3.4 example).
    Fixture f(
        "  plus #10,#0 :r0\n"   // queue[0] = 10
        "  plus #20,#0 :r1\n"   // queue[1] = 20
        "  plus++ r0,r1 :r0,r2\n"
        "  fret\n");
    run(f.pe);
    // After the consume, virtual r0/r2 hold 30.
    EXPECT_EQ(f.pe.readReg(0), 30u);
    EXPECT_EQ(f.pe.readReg(2), 30u);
    // QP advanced two words.
    EXPECT_EQ(f.pe.qp(), kPage + 8);
}

TEST(Pe, WindowRegisterTranslationWraps)
{
    Fixture f("  fret\n");
    // With QP at word offset 14 of the page, virtual r3 = physical r1.
    f.pe.setQp(kPage + 14 * 4);
    EXPECT_EQ(f.pe.physicalIndex(0), 14);
    EXPECT_EQ(f.pe.physicalIndex(3), 1);
}

TEST(Pe, WindowAddressWrapsWithinPage)
{
    Fixture f("  fret\n");
    f.pe.setPom(pomForPageWords(32));
    // Word offset 30 within a 32-word page: r5 wraps to word 3.
    f.pe.setQp(kPage + 30 * 4);
    EXPECT_EQ(f.pe.windowAddress(0), kPage + 30 * 4);
    EXPECT_EQ(f.pe.windowAddress(5), kPage + 3 * 4);
}

TEST(Pe, PresenceMissReadsQueuePageMemory)
{
    // Nothing was ever written to r0's register: the operand must come
    // from the memory-resident queue page.
    Fixture f(
        "  plus r0,#1 :r17\n"
        "  fret\n");
    f.memory.writeWord(kPage, 41);
    run(f.pe);
    EXPECT_EQ(f.pe.readReg(17), 42u);
    EXPECT_EQ(f.pe.stats().counter("pe.window_misses"), 1u);
}

TEST(Pe, DupWritesMemoryResidentQueue)
{
    // dup stores the previous result into the queue page in memory,
    // even for offsets under 16 (section 5.3.3).
    Fixture f(
        "  plus #5,#6 :r0 >\n"
        "  dup2 :r3,r30\n"
        "  fret\n");
    run(f.pe);
    EXPECT_EQ(f.memory.readWord(kPage + 3 * 4), 11u);
    EXPECT_EQ(f.memory.readWord(kPage + 30 * 4), 11u);
    // r0 was written as a register destination; r3 only in memory.
    EXPECT_TRUE(f.pe.presence(f.pe.physicalIndex(0)));
    EXPECT_FALSE(f.pe.presence(f.pe.physicalIndex(3)));
}

TEST(Pe, QpIncrementClearsPresence)
{
    Fixture f(
        "  plus #1,#0 :r0\n"
        "  plus #2,#0 :r1\n"
        "  plus++ r0,r1 :r17\n"
        "  fret\n");
    run(f.pe);
    EXPECT_EQ(f.pe.readReg(17), 3u);
    // Physical registers that held r0/r1 slid out and were cleared.
    EXPECT_FALSE(f.pe.presence(14 & 0xF));
}

TEST(Pe, MemoryFetchAndStore)
{
    Fixture f(
        "  plus #4096,#512 :r17\n"   // address 0x1200
        "  store r17,#77\n"
        "  fetch r17 :r18\n"
        "  storb r17,#5\n"
        "  fchb r17 :r19\n"
        "  fret\n");
    run(f.pe);
    EXPECT_EQ(f.pe.readReg(18), 77u);
    EXPECT_EQ(f.pe.readReg(19), 5u);
}

TEST(Pe, ComparisonsProduceBooleanWords)
{
    Fixture f(
        "  lt #-3,#4 :r17\n"
        "  gt #-3,#4 :r18\n"
        "  his #-1,#1 :r19\n"   // unsigned: 0xFFFFFFFF >= 1
        "  eq #7,#7 :r20\n"
        "  le #7,#7 :r21\n"
        "  ne #7,#7 :r22\n"
        "  fret\n");
    run(f.pe);
    EXPECT_EQ(f.pe.readReg(17), kTrue);
    EXPECT_EQ(f.pe.readReg(18), kFalse);
    EXPECT_EQ(f.pe.readReg(19), kTrue);
    EXPECT_EQ(f.pe.readReg(20), kTrue);
    EXPECT_EQ(f.pe.readReg(21), kTrue);
    EXPECT_EQ(f.pe.readReg(22), kFalse);
}

TEST(Pe, ShiftsAreArithmetic)
{
    Fixture f(
        "  lshift #1,#4 :r17\n"
        "  rshift #-16,#2 :r18\n"
        "  fret\n");
    run(f.pe);
    EXPECT_EQ(f.pe.readReg(17), 16u);
    EXPECT_EQ(static_cast<SWord>(f.pe.readReg(18)), -4);
}

TEST(Pe, BranchLoopComputesSum)
{
    // Sum 1..5 with a conventional register loop (the thesis design goal
    // of supporting Von Neumann-style execution alongside queue mode).
    Fixture f(
        "  plus #0,#0 :r17\n"    // sum = 0
        "  plus #5,#0 :r18\n"    // i = 5
        "loop:\n"
        "  plus r17,r18 :r17\n"
        "  minus r18,#1 :r18\n"
        "  bne r18,@loop\n"
        "  fret\n");
    run(f.pe);
    EXPECT_EQ(f.pe.readReg(17), 15u);
    EXPECT_EQ(f.pe.readReg(18), 0u);
}

TEST(Pe, BeqBranchesOnFalse)
{
    Fixture f(
        "  eq #1,#2 :r17\n"
        "  beq r17,@skip\n"
        "  plus #99,#0 :r18\n"   // skipped
        "skip:\n"
        "  plus #7,#0 :r19\n"
        "  fret\n");
    run(f.pe);
    EXPECT_EQ(f.pe.readReg(18), 0u);
    EXPECT_EQ(f.pe.readReg(19), 7u);
}

TEST(Pe, DivisionByZeroIsFatal)
{
    Fixture f("  div #1,#0 :r17\n  fret\n");
    EXPECT_THROW(run(f.pe), FatalError);
}

TEST(Pe, RollOutWritesPresentRegistersToQueuePage)
{
    Fixture f(
        "  plus #21,#0 :r0\n"
        "  plus #22,#0 :r1\n"
        "  fret\n");
    run(f.pe);
    long cycles = f.pe.rollOut();
    EXPECT_GT(cycles, 0);
    EXPECT_EQ(f.memory.readWord(kPage), 21u);
    EXPECT_EQ(f.memory.readWord(kPage + 4), 22u);
    EXPECT_FALSE(f.pe.presence(0));
    EXPECT_FALSE(f.pe.presence(1));
}

TEST(Pe, SaveAndLoadContextRoundTrip)
{
    Fixture f(
        "  plus #5,#0 :r0\n"
        "  plus #9,#0 :r17\n"
        "  fret\n");
    run(f.pe);
    ContextState saved = f.pe.saveContext();
    EXPECT_EQ(saved.generals[0], 9u);

    // Clobber and restore; the rolled-out window operand must come back
    // through memory on demand (presence bits start cleared).
    ContextState other;
    other.pc = 0;
    other.qp = 0x2000;
    other.pom = pomForPageWords(64);
    f.pe.loadContext(other);
    f.pe.loadContext(saved);
    EXPECT_EQ(f.pe.readReg(17), 9u);
    EXPECT_EQ(f.pe.readReg(0), 5u);  // via the queue page in memory
}

/** Host that records channel traffic and can simulate blocking. */
class RecordingHost : public PeHost
{
  public:
    std::vector<std::pair<Word, Word>> sends;
    std::vector<Word> recvValues;
    int blockCount = 0;  ///< Number of times to report Blocked first.

    HostStatus
    send(Word channel, Word value) override
    {
        if (blockCount > 0) {
            --blockCount;
            return HostStatus::Blocked;
        }
        sends.emplace_back(channel, value);
        return HostStatus::Done;
    }

    HostStatus
    recv(Word, Word &value) override
    {
        if (blockCount > 0) {
            --blockCount;
            return HostStatus::Blocked;
        }
        value = recvValues.back();
        recvValues.pop_back();
        return HostStatus::Done;
    }

    TrapOutcome
    trap(Word number, Word argument) override
    {
        TrapOutcome outcome;
        if (number == 99) {
            outcome.result = argument + 1;
        } else if (number == 0) {
            outcome.endContext = true;
        }
        return outcome;
    }
};

TEST(Pe, SendDeliversChannelAndValue)
{
    Memory memory(1 << 16);
    RecordingHost host;
    ObjectCode code = assemble("  send #7,#42\n  fret\n");
    ProcessingElement pe(memory, code, host);
    ContextState state;
    state.qp = kPage;
    state.pom = pomForPageWords(64);
    pe.loadContext(state);
    run(pe);
    ASSERT_EQ(host.sends.size(), 1u);
    EXPECT_EQ(host.sends[0], (std::pair<Word, Word>{7, 42}));
}

TEST(Pe, BlockedSendLeavesPcForRetry)
{
    Memory memory(1 << 16);
    RecordingHost host;
    host.blockCount = 2;
    ObjectCode code = assemble("  send #7,#42\n  fret\n");
    ProcessingElement pe(memory, code, host);
    ContextState state;
    state.qp = kPage;
    state.pom = pomForPageWords(64);
    pe.loadContext(state);

    EXPECT_EQ(pe.step().status, StepStatus::Blocked);
    EXPECT_EQ(pe.pc(), 0u);  // not consumed
    EXPECT_EQ(pe.step().status, StepStatus::Blocked);
    EXPECT_EQ(pe.step().status, StepStatus::Executed);
    ASSERT_EQ(host.sends.size(), 1u);
}

TEST(Pe, RecvWritesDestination)
{
    Memory memory(1 << 16);
    RecordingHost host;
    host.recvValues = {123};
    ObjectCode code = assemble("  recv #5 :r17\n  fret\n");
    ProcessingElement pe(memory, code, host);
    ContextState state;
    state.qp = kPage;
    state.pom = pomForPageWords(64);
    pe.loadContext(state);
    run(pe);
    EXPECT_EQ(pe.readReg(17), 123u);
}

TEST(Pe, TrapWritesResultsAndEndsContext)
{
    Memory memory(1 << 16);
    RecordingHost host;
    ObjectCode code = assemble(
        "  trap #99,#10 :r17,r18\n"
        "  trap #0,#0\n");
    ProcessingElement pe(memory, code, host);
    ContextState state;
    state.qp = kPage;
    state.pom = pomForPageWords(64);
    pe.loadContext(state);

    EXPECT_EQ(pe.step().status, StepStatus::Executed);
    // The trap result fans out to both destinations, like any other op.
    EXPECT_EQ(pe.readReg(17), 11u);
    EXPECT_EQ(pe.readReg(18), 11u);
    EXPECT_EQ(pe.step().status, StepStatus::ContextEnd);
}

TEST(Pe, WritesToDummyAreDiscarded)
{
    Fixture f(
        "  plus #1,#2 :dummy\n"
        "  fret\n");
    run(f.pe);
    EXPECT_EQ(f.pe.readReg(RegDummy), 0u);
}

TEST(Pe, NullHostRejectsChannelUse)
{
    Fixture f("  send #1,#2\n  fret\n");
    EXPECT_THROW(run(f.pe), FatalError);
}

} // namespace
