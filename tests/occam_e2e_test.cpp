/**
 * @file
 * End-to-end tests: OCCAM source -> compiler -> object code ->
 * multiprocessor simulation, verified through the data segment.
 * These exercise the full thesis pipeline (Fig 4.21 + Chapter 6).
 */
#include <gtest/gtest.h>

#include "mp/system.hpp"
#include "occam/compiler.hpp"
#include "support/cli.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace qm;
using namespace qm::occam;

/** Compile, run on @p pes PEs, and return the finished system. */
struct Exec
{
    CompiledProgram compiled;
    std::unique_ptr<mp::System> system;
    mp::RunResult result;

    Exec(const std::string &source, int pes = 1,
        const CompileOptions &options = {}, int threads = 1)
        : compiled(compileOccam(source, options))
    {
        mp::SystemConfig config;
        config.numPes = pes;
        config.hostThreads = threads;
        system = std::make_unique<mp::System>(compiled.object, config);
        result = system->run(compiled.mainLabel);
    }

    isa::Word
    word(const std::string &array, int index = 0) const
    {
        return system->memory().readWord(
            compiled.arrayAddress(array) +
            static_cast<isa::Addr>(index) * 4);
    }
};

TEST(E2e, StraightLineArithmetic)
{
    Exec run(
        "var r[4]:\n"
        "var x, y:\n"
        "seq\n"
        "  x := 6\n"
        "  y := 7\n"
        "  r[0] := x * y\n"
        "  r[1] := (x + y) - 3\n"
        "  r[2] := x - (2 * y)\n"
        "  r[3] := (100 / x) + (100 \\ x)\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r", 0), 42u);
    EXPECT_EQ(run.word("r", 1), 10u);
    EXPECT_EQ(static_cast<isa::SWord>(run.word("r", 2)), -8);
    EXPECT_EQ(run.word("r", 3), 20u);  // 16 + 4
}

TEST(E2e, SharedSubexpressionFansOut)
{
    // d <- a/(a+b) + (a+b)*c: the Table 3.4 graph, exercising result
    // fan-out through dst fields.
    Exec run(
        "var r[1]:\n"
        "var a, b, c:\n"
        "seq\n"
        "  a := 40\n"
        "  b := 10\n"
        "  c := 3\n"
        "  r[0] := (a / (a + b)) + ((a + b) * c)\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r"), 150u);
}

TEST(E2e, BooleanAndComparisonOperators)
{
    Exec run(
        "var r[6]:\n"
        "var x:\n"
        "seq\n"
        "  x := 5\n"
        "  if\n"
        "    (x > 3) and (x < 10)\n"
        "      r[0] := 1\n"
        "  if\n"
        "    (x = 5) or (x = 6)\n"
        "      r[1] := 1\n"
        "  if\n"
        "    not (x <> 5)\n"
        "      r[2] := 1\n"
        "  if\n"
        "    x >= 6\n"
        "      r[3] := 1\n"
        "    x <= 4\n"
        "      r[3] := 2\n"
        "    x = 5\n"
        "      r[3] := 3\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r", 0), 1u);
    EXPECT_EQ(run.word("r", 1), 1u);
    EXPECT_EQ(run.word("r", 2), 1u);
    EXPECT_EQ(run.word("r", 3), 3u);
}

TEST(E2e, IfUpdatesScalarAcrossContexts)
{
    // The branch runs in its own context; the new value of y must flow
    // back to the parent through the splice.
    Exec run(
        "var r[1]:\n"
        "var x, y:\n"
        "seq\n"
        "  x := 2\n"
        "  y := 0\n"
        "  if\n"
        "    x > 1\n"
        "      y := 11\n"
        "    x <= 1\n"
        "      y := 22\n"
        "  r[0] := y + 1\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r"), 12u);
}

TEST(E2e, WhileLoopAccumulates)
{
    Exec run(
        "var r[1]:\n"
        "var i, sum:\n"
        "seq\n"
        "  i := 1\n"
        "  sum := 0\n"
        "  while i <= 10\n"
        "    seq\n"
        "      sum := sum + i\n"
        "      i := i + 1\n"
        "  r[0] := sum\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r"), 55u);
}

TEST(E2e, ReplicatedSeqDesugarsAndRuns)
{
    Exec run(
        "var r[1]:\n"
        "var sum:\n"
        "seq\n"
        "  sum := 0\n"
        "  seq k = [1 for 10]\n"
        "    sum := sum + k\n"
        "  r[0] := sum\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r"), 55u);
}

TEST(E2e, NestedLoops)
{
    Exec run(
        "var r[1]:\n"
        "var total:\n"
        "seq\n"
        "  total := 0\n"
        "  seq i = [0 for 4]\n"
        "    seq j = [0 for 3]\n"
        "      total := total + (i * j)\n"
        "  r[0] := total\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r"), 18u);  // (0+1+2+3)*(0+1+2) = 6*3
}

TEST(E2e, ArrayElementReadWrite)
{
    Exec run(
        "var v[8], r[2]:\n"
        "seq\n"
        "  seq i = [0 for 8]\n"
        "    v[i] := i * i\n"
        "  r[0] := v[3]\n"
        "  r[1] := v[7] - v[6]\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r", 0), 9u);
    EXPECT_EQ(run.word("r", 1), 13u);
    EXPECT_EQ(run.word("v", 5), 25u);
}

TEST(E2e, ParComponentsMergeResults)
{
    Exec run(
        "var r[3]:\n"
        "var a, b, x, y:\n"
        "seq\n"
        "  a := 10\n"
        "  b := 20\n"
        "  par\n"
        "    x := a + 1\n"
        "    y := b + 2\n"
        "  r[0] := x\n"
        "  r[1] := y\n"
        "  r[2] := x + y\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r", 0), 11u);
    EXPECT_EQ(run.word("r", 1), 22u);
    EXPECT_EQ(run.word("r", 2), 33u);
    EXPECT_GE(run.result.contexts, 3u);
}

TEST(E2e, ChannelsBetweenParComponents)
{
    // A producer/consumer pair communicating over a declared channel:
    // the core CSP rendezvous the architecture is built around.
    Exec run(
        "var r[1]:\n"
        "chan c:\n"
        "var got:\n"
        "seq\n"
        "  par\n"
        "    c ! 123\n"
        "    c ? got\n"
        "  r[0] := got\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r"), 123u);
}

TEST(E2e, ChannelPipelineInOrder)
{
    Exec run(
        "var r[3]:\n"
        "chan c:\n"
        "var a, b, d:\n"
        "seq\n"
        "  par\n"
        "    seq\n"
        "      c ! 1\n"
        "      c ! 2\n"
        "      c ! 3\n"
        "    seq\n"
        "      c ? a\n"
        "      c ? b\n"
        "      c ? d\n"
        "  r[0] := a\n"
        "  r[1] := b\n"
        "  r[2] := d\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r", 0), 1u);
    EXPECT_EQ(run.word("r", 1), 2u);
    EXPECT_EQ(run.word("r", 2), 3u);
}

TEST(E2e, ReplicatedParFansOut)
{
    Exec run(
        "var v[6]:\n"
        "par i = [0 for 6]\n"
        "  v[i] := i * 10\n");
    ASSERT_TRUE(run.result.completed);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(run.word("v", i), static_cast<isa::Word>(i * 10));
    EXPECT_GE(run.result.contexts, 7u);
}

TEST(E2e, ProcedureCallValueAndVarParams)
{
    Exec run(
        "var r[2]:\n"
        "proc addmul (value a, value b, var s, var p) =\n"
        "  seq\n"
        "    s := a + b\n"
        "    p := a * b\n"
        ":\n"
        "var s, p:\n"
        "seq\n"
        "  addmul (6, 7, s, p)\n"
        "  r[0] := s\n"
        "  r[1] := p\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r", 0), 13u);
    EXPECT_EQ(run.word("r", 1), 42u);
}

TEST(E2e, ProcedureWithArrayParam)
{
    Exec run(
        "var v[5], r[1]:\n"
        "proc fill (var a[], value n) =\n"
        "  seq i = [0 for n]\n"
        "    a[i] := i + 100\n"
        ":\n"
        "seq\n"
        "  fill (v, 5)\n"
        "  r[0] := v[4]\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r"), 104u);
    EXPECT_EQ(run.word("v", 0), 100u);
}

TEST(E2e, RecursiveProcedure)
{
    // Factorial by recursion: contexts splice re-entrantly against one
    // shared instruction sequence (the pseudo-static reentrancy claim).
    Exec run(
        "var r[1]:\n"
        "proc fact (value n, var out) =\n"
        "  if\n"
        "    n <= 1\n"
        "      out := 1\n"
        "    n > 1\n"
        "      var sub:\n"
        "      seq\n"
        "        fact (n - 1, sub)\n"
        "        out := n * sub\n"
        ":\n"
        "var f:\n"
        "seq\n"
        "  fact (6, f)\n"
        "  r[0] := f\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r"), 720u);
}

TEST(E2e, SameResultOnEveryThreadCount)
{
    // The PDES scheduler behind --threads: observable results must be
    // independent of the host thread count, including counts above
    // the PE count (clamped to one worker per PE).
    const std::string source =
        "var v[8], r[1]:\n"
        "var total:\n"
        "seq\n"
        "  par i = [0 for 8]\n"
        "    v[i] := (i * i) + 1\n"
        "  total := 0\n"
        "  seq i = [0 for 8]\n"
        "    total := total + v[i]\n"
        "  r[0] := total\n";
    for (int threads : {1, 2, 4, 8, 16}) {
        Exec run(source, /*pes=*/8, {}, threads);
        ASSERT_TRUE(run.result.completed) << "threads=" << threads;
        EXPECT_EQ(run.word("r"), 148u) << "threads=" << threads;
    }
}

TEST(E2e, ThreadsFlagRejectsMalformedValues)
{
    // occamc parses --threads through parsePositiveIntArg exactly like
    // --pes (PR 2): zero, negative, non-numeric, trailing garbage, and
    // absurd values must all fail with a diagnostic, not a crash or a
    // silent fallback.
    EXPECT_THROW(parsePositiveIntArg("0", "--threads", 1024),
                 FatalError);
    EXPECT_THROW(parsePositiveIntArg("-2", "--threads", 1024),
                 FatalError);
    EXPECT_THROW(parsePositiveIntArg("four", "--threads", 1024),
                 FatalError);
    EXPECT_THROW(parsePositiveIntArg("4x", "--threads", 1024),
                 FatalError);
    EXPECT_THROW(parsePositiveIntArg("", "--threads", 1024),
                 FatalError);
    EXPECT_THROW(parsePositiveIntArg("4096", "--threads", 1024),
                 FatalError);
    EXPECT_THROW(parsePositiveIntArg("99999999999999999999",
                                     "--threads", 1024),
                 FatalError);
    EXPECT_EQ(parsePositiveIntArg("8", "--threads", 1024), 8);
}

TEST(E2e, SameResultOnEveryPeCount)
{
    // The acid test: identical observable results at 1..8 PEs.
    const std::string source =
        "var v[8], r[1]:\n"
        "var total:\n"
        "seq\n"
        "  par i = [0 for 8]\n"
        "    v[i] := (i * i) + 1\n"
        "  total := 0\n"
        "  seq i = [0 for 8]\n"
        "    total := total + v[i]\n"
        "  r[0] := total\n";
    // sum (i^2+1) for 0..7 = 140 + 8 = 148.
    for (int pes : {1, 2, 3, 4, 8}) {
        Exec run(source, pes);
        ASSERT_TRUE(run.result.completed) << "pes=" << pes;
        EXPECT_EQ(run.word("r"), 148u) << "pes=" << pes;
    }
}

TEST(E2e, OptimizationKnobsPreserveSemantics)
{
    const std::string source =
        "var r[1]:\n"
        "var i, sum:\n"
        "seq\n"
        "  i := 0\n"
        "  sum := 0\n"
        "  while i < 6\n"
        "    seq\n"
        "      sum := sum + (i * i)\n"
        "      i := i + 1\n"
        "  r[0] := sum\n";
    for (bool live : {true, false}) {
        for (bool inputseq : {true, false}) {
            for (bool prio : {true, false}) {
                CompileOptions options;
                options.liveAnalysis = live;
                options.inputSequencing = inputseq;
                options.priorityScheduling = prio;
                Exec run(source, 2, options);
                ASSERT_TRUE(run.result.completed);
                EXPECT_EQ(run.word("r"), 55u)
                    << live << inputseq << prio;
            }
        }
    }
}

TEST(E2e, WaitAndSkip)
{
    Exec run(
        "var r[1]:\n"
        "seq\n"
        "  skip\n"
        "  wait 500\n"
        "  r[0] := 9\n");
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r"), 9u);
    EXPECT_GE(run.result.cycles, 500);
}

TEST(E2e, CompilerRejectsDynamicReplicatedPar)
{
    EXPECT_THROW(compileOccam(
        "var v[8]:\n"
        "var n:\n"
        "seq\n"
        "  n := 4\n"
        "  par i = [0 for n]\n"
        "    v[i] := i\n"), FatalError);
}

TEST(E2e, UseBeforeDefinitionIsFatal)
{
    EXPECT_THROW(compileOccam(
        "var r[1]:\n"
        "var x, y:\n"
        "seq\n"
        "  x := y\n"), FatalError);
}

} // namespace

// Appended regression tests --------------------------------------------------
// (kept in the anonymous namespace of this file via re-opening it)

namespace {

using namespace qm;
using namespace qm::occam;

TEST(E2e, LoopSendsPrecedeTerminatorSend)
{
    // Regression: a send after a loop of sends on the same channel must
    // not overtake the loop (the loop splice sits on the control-token
    // chain, thesis section 4.6). The consumer records arrival order.
    Exec run(
        "var r[5]:\n"
        "chan c:\n"
        "seq\n"
        "  par\n"
        "    seq\n"
        "      seq n = [1 for 4]\n"
        "        c ! n\n"
        "      c ! 99\n"
        "    seq k = [0 for 5]\n"
        "      var v:\n"
        "      seq\n"
        "        c ? v\n"
        "        r[k] := v\n",
        2);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r", 0), 1u);
    EXPECT_EQ(run.word("r", 1), 2u);
    EXPECT_EQ(run.word("r", 2), 3u);
    EXPECT_EQ(run.word("r", 3), 4u);
    EXPECT_EQ(run.word("r", 4), 99u);
}

TEST(E2e, ChannelParametersThreadThroughProcs)
{
    // A two-stage pipeline built from one proc with chan parameters:
    // stage(cin, cout) doubles each value.
    Exec run(
        "var r[3]:\n"
        "chan a, b, c:\n"
        "proc stage (chan cin, chan cout) =\n"
        "  seq i = [0 for 3]\n"
        "    var v:\n"
        "    seq\n"
        "      cin ? v\n"
        "      cout ! v * 2\n"
        ":\n"
        "par\n"
        "  seq n = [1 for 3]\n"
        "    a ! n\n"
        "  stage (a, b)\n"
        "  stage (b, c)\n"
        "  seq k = [0 for 3]\n"
        "    var v:\n"
        "    seq\n"
        "      c ? v\n"
        "      r[k] := v\n",
        4);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r", 0), 4u);
    EXPECT_EQ(run.word("r", 1), 8u);
    EXPECT_EQ(run.word("r", 2), 12u);
}

TEST(E2e, IfInsideWhileWithChannels)
{
    // The sieve access pattern in miniature: a loop whose body is an
    // if over channel operations.
    Exec run(
        "var r[1]:\n"
        "chan c:\n"
        "seq\n"
        "  par\n"
        "    seq\n"
        "      c ! 5\n"
        "      c ! 0\n"
        "      c ! 7\n"
        "      c ! 0\n"
        "      c ! 0\n"
        "    var stop, total:\n"
        "    seq\n"
        "      stop := 0\n"
        "      total := 0\n"
        "      while stop < 3\n"
        "        var v:\n"
        "        seq\n"
        "          c ? v\n"
        "          if\n"
        "            v = 0\n"
        "              stop := stop + 1\n"
        "            v <> 0\n"
        "              total := total + v\n"
        "      r[0] := total\n",
        2);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r"), 12u);
}

TEST(E2e, ConsecutiveCallsDoNotReorder)
{
    // Two calls sending on the same channel must run in program order.
    Exec run(
        "var r[2]:\n"
        "chan c:\n"
        "proc put (chan ch, value v) =\n"
        "  ch ! v\n"
        ":\n"
        "par\n"
        "  seq\n"
        "    put (c, 10)\n"
        "    put (c, 20)\n"
        "  seq\n"
        "    var a, b:\n"
        "    seq\n"
        "      c ? a\n"
        "      c ? b\n"
        "      r[0] := a\n"
        "      r[1] := b\n",
        2);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.word("r", 0), 10u);
    EXPECT_EQ(run.word("r", 1), 20u);
}

} // namespace
