/**
 * @file
 * Tests for the fault-injection layer (src/fault) and its wiring
 * through the bus, message cache, PEs, kernel, and experiment runner:
 * plan parsing, schedule determinism, and the chaos suite that runs
 * every Chapter 6 benchmark degraded and demands either a verified
 * result or a clean structured failure - never a hang or a crash.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "isa/assembler.hpp"
#include "mp/system.hpp"
#include "occam/compiler.hpp"
#include "programs/benchmarks.hpp"
#include "sim/experiment.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace qm;
using namespace qm::fault;

// ---------------------------------------------------------------------
// FaultPlan parsing

TEST(FaultPlanParse, DefaultsAreValuePreserving)
{
    FaultPlan plan = parseFaultPlan("seed=5");
    EXPECT_EQ(plan.seed, 5u);
    EXPECT_DOUBLE_EQ(plan.rate, 0.01);
    EXPECT_EQ(plan.kinds, kDefaultKinds);
    EXPECT_EQ(plan.maxRetries, 4);
    EXPECT_EQ(plan.retryBackoff, 8);
    EXPECT_EQ(plan.maxDelay, 64);
    EXPECT_EQ(plan.maxStall, 32);
    EXPECT_TRUE(plan.enabled());
    // Corruption is opt-in: the default mask must not include it.
    EXPECT_EQ(plan.kinds & kCacheCorrupt, 0u);
}

TEST(FaultPlanParse, FullSpecRoundTripsThroughToString)
{
    const std::string spec =
        "seed=42,rate=0.05,kinds=drop+dup+delay+corrupt+stall,"
        "retries=6,backoff=16,delay=128,stall=48";
    FaultPlan plan = parseFaultPlan(spec);
    EXPECT_EQ(plan.seed, 42u);
    EXPECT_DOUBLE_EQ(plan.rate, 0.05);
    EXPECT_EQ(plan.kinds, kAllKinds);
    EXPECT_EQ(plan.maxRetries, 6);
    EXPECT_EQ(plan.retryBackoff, 16);
    EXPECT_EQ(plan.maxDelay, 128);
    EXPECT_EQ(plan.maxStall, 48);

    FaultPlan again = parseFaultPlan(toString(plan));
    EXPECT_EQ(again.seed, plan.seed);
    EXPECT_DOUBLE_EQ(again.rate, plan.rate);
    EXPECT_EQ(again.kinds, plan.kinds);
    EXPECT_EQ(again.maxRetries, plan.maxRetries);
    EXPECT_EQ(again.retryBackoff, plan.retryBackoff);
    EXPECT_EQ(again.maxDelay, plan.maxDelay);
    EXPECT_EQ(again.maxStall, plan.maxStall);
}

TEST(FaultPlanParse, KindsAllEnablesEverything)
{
    EXPECT_EQ(parseFaultPlan("kinds=all").kinds, kAllKinds);
}

TEST(FaultPlanParse, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseFaultPlan("bogus=1"), FatalError);
    EXPECT_THROW(parseFaultPlan("kinds=gamma-ray"), FatalError);
    EXPECT_THROW(parseFaultPlan("kinds="), FatalError);
    EXPECT_THROW(parseFaultPlan("rate=0"), FatalError);
    EXPECT_THROW(parseFaultPlan("rate=1.5"), FatalError);
    EXPECT_THROW(parseFaultPlan("rate=-0.1"), FatalError);
    EXPECT_THROW(parseFaultPlan("rate=abc"), FatalError);
    EXPECT_THROW(parseFaultPlan("seed=-3"), FatalError);
    EXPECT_THROW(parseFaultPlan("seed=notanumber"), FatalError);
    EXPECT_THROW(parseFaultPlan("retries=-1"), FatalError);
    EXPECT_THROW(parseFaultPlan("backoff=0"), FatalError);
    EXPECT_THROW(parseFaultPlan("seed"), FatalError);
}

// ---------------------------------------------------------------------
// Injector determinism

TEST(FaultInjector, SameSeedDrawsIdenticalSchedule)
{
    FaultPlan plan = parseFaultPlan("seed=99,rate=0.25,kinds=all");
    FaultInjector a(plan), b(plan);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.fire(kBusDrop), b.fire(kBusDrop));
        EXPECT_EQ(a.fire(kCacheCorrupt), b.fire(kCacheCorrupt));
        EXPECT_EQ(a.delayCycles(), b.delayCycles());
        EXPECT_EQ(a.stallCycles(), b.stallCycles());
        EXPECT_EQ(a.corruptWord(0xDEADBEEFu), b.corruptWord(0xDEADBEEFu));
    }
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_EQ(a.injectedOf(kBusDrop), b.injectedOf(kBusDrop));
}

TEST(FaultInjector, MaskedKindNeverFires)
{
    FaultPlan plan = parseFaultPlan("seed=1,rate=1.0,kinds=drop");
    FaultInjector injector(plan);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(injector.fire(kBusDrop));
        EXPECT_FALSE(injector.fire(kPeStall));
        EXPECT_FALSE(injector.fire(kCacheCorrupt));
    }
    EXPECT_EQ(injector.injectedOf(kBusDrop), 100u);
    EXPECT_EQ(injector.injectedOf(kPeStall), 0u);
}

TEST(FaultInjector, KindStreamsAreIndependent)
{
    // Masking stall on/off must not shift the drop stream: each kind
    // draws from its own generator.
    FaultPlan drop_only = parseFaultPlan("seed=7,rate=0.5,kinds=drop");
    FaultPlan both = parseFaultPlan("seed=7,rate=0.5,kinds=drop+stall");
    FaultInjector a(drop_only), b(both);
    for (int i = 0; i < 500; ++i) {
        b.fire(kPeStall);  // extra traffic on the stall stream
        EXPECT_EQ(a.fire(kBusDrop), b.fire(kBusDrop)) << "draw " << i;
    }
}

TEST(FaultInjector, CorruptWordFlipsExactlyOneBit)
{
    FaultPlan plan = parseFaultPlan("seed=3,rate=1.0,kinds=corrupt");
    FaultInjector injector(plan);
    for (int i = 0; i < 200; ++i) {
        std::uint32_t value = 0x12345678u + static_cast<std::uint32_t>(i);
        std::uint32_t corrupted = injector.corruptWord(value);
        EXPECT_NE(corrupted, value);
        EXPECT_EQ(__builtin_popcount(corrupted ^ value), 1);
    }
}

// ---------------------------------------------------------------------
// System-level fixtures

/** Parent rforks a child, sends two values, receives the sum (the
 *  mp_test rendezvous fixture). Multi-PE runs ship the child and its
 *  messages across the ring bus, exercising the fault path. */
const char *kForkAddProgram =
    "main:\n"
    "  trap #1,@child :r17\n"
    "  send r17,#30\n"
    "  send r17,#12\n"
    "  plus r17,#1 :r18\n"
    "  recv r18 :r19\n"
    "  store #6291456,r19\n"
    "  trap #0,#0\n"
    "child:\n"
    "  trap #3,#0 :r17\n"
    "  trap #4,#0 :r18\n"
    "  recv r17 :r0\n"
    "  recv r17 :r1\n"
    "  plus++ r0,r1 :r19\n"
    "  send r18,r19\n"
    "  trap #0,#0\n";

mp::RunResult
runForkAdd(const fault::FaultPlan &plan, int pes,
           bool trace = false, mp::System **system_out = nullptr)
{
    static isa::ObjectCode code = isa::assemble(kForkAddProgram);
    mp::SystemConfig config;
    config.numPes = pes;
    config.faultPlan = plan;
    config.traceConfig.enabled = trace;
    static std::unique_ptr<mp::System> keep;
    keep = std::make_unique<mp::System>(code, config);
    if (system_out)
        *system_out = keep.get();
    return keep->run("main");
}

TEST(FaultSystem, WatchdogConvertsCertainLossIntoCleanFailure)
{
    // Every remote transfer drops, beyond the retry bound: the child
    // context is lost in shipment and the parent starves. Without
    // faults this would be a fatal deadlock; with them it must be a
    // structured failure.
    FaultPlan plan = parseFaultPlan("seed=11,rate=1.0,kinds=drop");
    mp::RunResult result = runForkAdd(plan, 2);
    EXPECT_FALSE(result.completed);
    EXPECT_TRUE(result.watchdogTripped);
    EXPECT_FALSE(result.failureReason.empty());
    EXPECT_GE(result.faultsInjected, 1u);
    EXPECT_GE(result.faultRecoveries, 1u);  // the bounded retries
}

TEST(FaultSystem, CorruptionIsDetectedAndReported)
{
    // Every token in the message cache is corrupted after its checksum
    // is recorded; the first receive must detect the mismatch and end
    // the run cleanly (detect-and-fail: there is no redundant copy).
    FaultPlan plan = parseFaultPlan("seed=2,rate=1.0,kinds=corrupt");
    mp::RunResult result = runForkAdd(plan, 1);
    EXPECT_FALSE(result.completed);
    EXPECT_FALSE(result.watchdogTripped);
    EXPECT_NE(result.failureReason.find("corruption"),
              std::string::npos)
        << result.failureReason;
    EXPECT_GE(result.faultsInjected, 1u);
}

TEST(FaultSystem, LocalRunsAreImmuneToBusFaults)
{
    // Bus faults only touch remote transfers; a 1-PE run has none, so
    // even rate=1.0 drop must complete and produce 42.
    FaultPlan plan = parseFaultPlan("seed=4,rate=1.0,kinds=drop");
    mp::System *system = nullptr;
    mp::RunResult result = runForkAdd(plan, 1, false, &system);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system->memory().readWord(mp::kDataBase), 42u);
}

TEST(FaultSystem, ValuePreservingFaultsStillComputeTheSum)
{
    // Duplication, delay, and stalls perturb timing but never values:
    // when the run completes the answer must be exact.
    FaultPlan plan =
        parseFaultPlan("seed=21,rate=0.2,kinds=dup+delay+stall");
    mp::System *system = nullptr;
    mp::RunResult result = runForkAdd(plan, 4, false, &system);
    ASSERT_TRUE(result.completed) << result.failureReason;
    EXPECT_EQ(system->memory().readWord(mp::kDataBase), 42u);
    EXPECT_GE(result.faultsInjected, 1u);
}

TEST(FaultSystem, TraceRecordsInjectionsAndRecoveries)
{
    FaultPlan plan = parseFaultPlan("seed=11,rate=1.0,kinds=drop");
    mp::System *system = nullptr;
    mp::RunResult result = runForkAdd(plan, 2, /*trace=*/true, &system);
    EXPECT_FALSE(result.completed);
    std::string summary = system->tracer().summary();
    EXPECT_NE(summary.find("fault-inject"), std::string::npos)
        << summary;
    EXPECT_NE(summary.find("fault-recover"), std::string::npos)
        << summary;
    // The event stream carries the machine-readable schedule too.
    std::uint64_t injects = 0, recoveries = 0;
    for (const trace::Event &e : system->tracer().events()) {
        if (e.kind == trace::EventKind::FaultInject)
            ++injects;
        if (e.kind == trace::EventKind::FaultRecover)
            ++recoveries;
    }
    EXPECT_GE(injects, result.faultsInjected);
    EXPECT_GE(recoveries, 1u);
}

TEST(FaultSystem, SameSeedReplaysTheIdenticalTrace)
{
    FaultPlan plan =
        parseFaultPlan("seed=33,rate=0.3,kinds=drop+dup+delay+stall");
    std::vector<trace::Event> first;
    mp::RunResult r1, r2;
    {
        mp::System *system = nullptr;
        r1 = runForkAdd(plan, 4, /*trace=*/true, &system);
        first = system->tracer().events();
    }
    mp::System *system = nullptr;
    r2 = runForkAdd(plan, 4, /*trace=*/true, &system);
    const std::vector<trace::Event> &second = system->tracer().events();

    EXPECT_EQ(r1.completed, r2.completed);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_EQ(r1.faultsInjected, r2.faultsInjected);
    EXPECT_EQ(r1.faultRecoveries, r2.faultRecoveries);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].kind, second[i].kind) << "event " << i;
        EXPECT_EQ(first[i].pe, second[i].pe) << "event " << i;
        EXPECT_EQ(first[i].ctx, second[i].ctx) << "event " << i;
        EXPECT_EQ(first[i].at, second[i].at) << "event " << i;
        EXPECT_EQ(first[i].a, second[i].a) << "event " << i;
        EXPECT_EQ(first[i].b, second[i].b) << "event " << i;
    }
}

// ---------------------------------------------------------------------
// Experiment-runner integration and the chaos suite

void
expectReportsEqual(const sim::RunReport &a, const sim::RunReport &b,
                   const std::string &label)
{
    EXPECT_EQ(a.completed, b.completed) << label;
    EXPECT_EQ(a.verified, b.verified) << label;
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.instructions, b.instructions) << label;
    EXPECT_EQ(a.contexts, b.contexts) << label;
    EXPECT_EQ(a.rendezvous, b.rendezvous) << label;
    EXPECT_EQ(a.contextSwitches, b.contextSwitches) << label;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << label;
    EXPECT_EQ(a.kernelCycles, b.kernelCycles) << label;
    EXPECT_EQ(a.blockedCycles, b.blockedCycles) << label;
    EXPECT_EQ(a.busCycles, b.busCycles) << label;
    EXPECT_EQ(a.watchdogTripped, b.watchdogTripped) << label;
    EXPECT_EQ(a.failureReason, b.failureReason) << label;
    EXPECT_EQ(a.faultsInjected, b.faultsInjected) << label;
    EXPECT_EQ(a.faultRecoveries, b.faultRecoveries) << label;
}

TEST(FaultChaos, ScheduleIsIndependentOfJobCount)
{
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    mp::SystemConfig config;
    config.faultPlan =
        parseFaultPlan("seed=5,rate=0.05,kinds=drop+delay+stall");
    std::vector<sim::RunSpec> specs;
    for (int pes : {1, 2, 4}) {
        sim::RunSpec spec;
        spec.program = &program;
        spec.resultArray = bench.resultArray;
        spec.expected = bench.expected;
        spec.pes = pes;
        spec.config = config;
        specs.push_back(std::move(spec));
    }
    std::vector<sim::RunReport> serial = sim::runAll(specs, 1);
    std::vector<sim::RunReport> parallel = sim::runAll(specs, 3);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectReportsEqual(serial[i], parallel[i],
                           "pes=" + std::to_string(serial[i].pes));
}

TEST(FaultChaos, DisabledPlanIsByteIdenticalToBaseline)
{
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    sim::RunReport baseline =
        sim::runOnce(program, bench.resultArray, bench.expected, 4, {});
    mp::SystemConfig zero_rate;
    zero_rate.faultPlan.seed = 123;  // rate stays 0: disabled
    sim::RunReport with_plan = sim::runOnce(
        program, bench.resultArray, bench.expected, 4, zero_rate);
    expectReportsEqual(baseline, with_plan, "disabled plan");
    EXPECT_TRUE(baseline.verified);
    EXPECT_EQ(baseline.faultsInjected, 0u);
}

TEST(FaultChaos, RunAllSurvivesFailingRuns)
{
    // pes=1 is immune to bus drops (all transfers local); pes=4 at
    // rate=1.0 drop must fail cleanly. The sweep reports both rows
    // instead of dying on the failure.
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    mp::SystemConfig config;
    config.faultPlan = parseFaultPlan("seed=9,rate=1.0,kinds=drop");
    config.watchdogCycles = 100'000;
    std::vector<sim::RunSpec> specs;
    for (int pes : {1, 4}) {
        sim::RunSpec spec;
        spec.program = &program;
        spec.resultArray = bench.resultArray;
        spec.expected = bench.expected;
        spec.pes = pes;
        spec.config = config;
        specs.push_back(std::move(spec));
    }
    std::vector<sim::RunReport> reports = sim::runAll(specs, 1);
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_TRUE(reports[0].verified) << reports[0].failureReason;
    EXPECT_FALSE(reports[1].completed);
    EXPECT_FALSE(reports[1].verified);
    EXPECT_FALSE(reports[1].failureReason.empty());
}

TEST(FaultChaos, EveryBenchmarkCompletesCorrectOrFailsCleanly)
{
    // The soak property: under value-preserving faults every Chapter 6
    // benchmark either produces the exact reference result or ends in
    // a structured failure - never a wrong answer, hang, or crash.
    mp::SystemConfig config;
    config.faultPlan =
        parseFaultPlan("seed=1234,rate=0.05,kinds=drop+dup+delay+stall");
    config.watchdogCycles = 500'000;
    for (const programs::Benchmark &bench :
         programs::thesisBenchmarks()) {
        occam::CompiledProgram program =
            occam::compileOccam(bench.source);
        sim::RunReport report = sim::runOnce(
            program, bench.resultArray, bench.expected, 4, config);
        if (report.completed) {
            EXPECT_TRUE(report.verified)
                << bench.name
                << ": faulty run completed with a WRONG result";
        } else {
            EXPECT_FALSE(report.failureReason.empty()) << bench.name;
        }
    }
}

} // namespace
