/**
 * @file
 * Tests for the fault-injection layer (src/fault) and its wiring
 * through the bus, message cache, PEs, kernel, and experiment runner:
 * plan parsing, schedule determinism, and the chaos suite that runs
 * every Chapter 6 benchmark degraded and demands either a verified
 * result or a clean structured failure - never a hang or a crash.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "fuzz_corpus.hpp"
#include "isa/assembler.hpp"
#include "mp/ring_bus.hpp"
#include "mp/system.hpp"
#include "occam/compiler.hpp"
#include "programs/benchmarks.hpp"
#include "sim/experiment.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace qm;
using namespace qm::fault;

// ---------------------------------------------------------------------
// FaultPlan parsing

TEST(FaultPlanParse, DefaultsAreValuePreserving)
{
    FaultPlan plan = parseFaultPlan("seed=5");
    EXPECT_EQ(plan.seed, 5u);
    EXPECT_DOUBLE_EQ(plan.rate, 0.01);
    EXPECT_EQ(plan.kinds, kDefaultKinds);
    EXPECT_EQ(plan.maxRetries, 4);
    EXPECT_EQ(plan.retryBackoff, 8);
    EXPECT_EQ(plan.maxDelay, 64);
    EXPECT_EQ(plan.maxStall, 32);
    EXPECT_TRUE(plan.enabled());
    // Corruption is opt-in: the default mask must not include it.
    EXPECT_EQ(plan.kinds & kCacheCorrupt, 0u);
}

TEST(FaultPlanParse, FullSpecRoundTripsThroughToString)
{
    const std::string spec =
        "seed=42,rate=0.05,kinds=drop+dup+delay+corrupt+stall,"
        "retries=6,backoff=16,delay=128,stall=48";
    FaultPlan plan = parseFaultPlan(spec);
    EXPECT_EQ(plan.seed, 42u);
    EXPECT_DOUBLE_EQ(plan.rate, 0.05);
    EXPECT_EQ(plan.kinds, kAllKinds);
    EXPECT_EQ(plan.maxRetries, 6);
    EXPECT_EQ(plan.retryBackoff, 16);
    EXPECT_EQ(plan.maxDelay, 128);
    EXPECT_EQ(plan.maxStall, 48);

    FaultPlan again = parseFaultPlan(toString(plan));
    EXPECT_EQ(again.seed, plan.seed);
    EXPECT_DOUBLE_EQ(again.rate, plan.rate);
    EXPECT_EQ(again.kinds, plan.kinds);
    EXPECT_EQ(again.maxRetries, plan.maxRetries);
    EXPECT_EQ(again.retryBackoff, plan.retryBackoff);
    EXPECT_EQ(again.maxDelay, plan.maxDelay);
    EXPECT_EQ(again.maxStall, plan.maxStall);
}

TEST(FaultPlanParse, KindsAllEnablesEverything)
{
    EXPECT_EQ(parseFaultPlan("kinds=all").kinds, kAllKinds);
    // "all" covers the stochastic kinds only: a fail-stop needs an
    // explicit schedule (killat), so pekill stays out of the mask.
    EXPECT_EQ(parseFaultPlan("kinds=all").kinds & kPeKill, 0u);
}

TEST(FaultPlanParse, KillAtImpliesPeKillAndRoundTrips)
{
    FaultPlan plan = parseFaultPlan("seed=1,killat=750,killpe=2");
    EXPECT_TRUE(plan.enabled());
    EXPECT_NE(plan.kinds & kPeKill, 0u);
    EXPECT_EQ(plan.killAt, 750);
    EXPECT_EQ(plan.killPe, 2);

    FaultPlan again = parseFaultPlan(toString(plan));
    EXPECT_EQ(again.kinds, plan.kinds);
    EXPECT_EQ(again.killAt, plan.killAt);
    EXPECT_EQ(again.killPe, plan.killPe);

    // Naming the kind without a schedule gets the default kill time.
    FaultPlan defaulted = parseFaultPlan("seed=1,kinds=pekill");
    EXPECT_NE(defaulted.kinds & kPeKill, 0u);
    EXPECT_GT(defaulted.killAt, 0);
}

TEST(FaultPlanParse, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseFaultPlan("bogus=1"), FatalError);
    EXPECT_THROW(parseFaultPlan("kinds=gamma-ray"), FatalError);
    EXPECT_THROW(parseFaultPlan("kinds="), FatalError);
    EXPECT_THROW(parseFaultPlan("rate=0"), FatalError);
    EXPECT_THROW(parseFaultPlan("rate=1.5"), FatalError);
    EXPECT_THROW(parseFaultPlan("rate=-0.1"), FatalError);
    EXPECT_THROW(parseFaultPlan("rate=abc"), FatalError);
    EXPECT_THROW(parseFaultPlan("seed=-3"), FatalError);
    EXPECT_THROW(parseFaultPlan("seed=notanumber"), FatalError);
    EXPECT_THROW(parseFaultPlan("retries=-1"), FatalError);
    EXPECT_THROW(parseFaultPlan("backoff=0"), FatalError);
    EXPECT_THROW(parseFaultPlan("seed"), FatalError);
}

// ---------------------------------------------------------------------
// Injector determinism

TEST(FaultInjector, SameSeedDrawsIdenticalSchedule)
{
    FaultPlan plan = parseFaultPlan("seed=99,rate=0.25,kinds=all");
    FaultInjector a(plan), b(plan);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.fire(kBusDrop), b.fire(kBusDrop));
        EXPECT_EQ(a.fire(kCacheCorrupt), b.fire(kCacheCorrupt));
        EXPECT_EQ(a.delayCycles(), b.delayCycles());
        EXPECT_EQ(a.stallCycles(), b.stallCycles());
        EXPECT_EQ(a.corruptWord(0xDEADBEEFu), b.corruptWord(0xDEADBEEFu));
    }
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_EQ(a.injectedOf(kBusDrop), b.injectedOf(kBusDrop));
}

TEST(FaultInjector, MaskedKindNeverFires)
{
    FaultPlan plan = parseFaultPlan("seed=1,rate=1.0,kinds=drop");
    FaultInjector injector(plan);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(injector.fire(kBusDrop));
        EXPECT_FALSE(injector.fire(kPeStall));
        EXPECT_FALSE(injector.fire(kCacheCorrupt));
    }
    EXPECT_EQ(injector.injectedOf(kBusDrop), 100u);
    EXPECT_EQ(injector.injectedOf(kPeStall), 0u);
}

TEST(FaultInjector, KindStreamsAreIndependent)
{
    // Masking stall on/off must not shift the drop stream: each kind
    // draws from its own generator.
    FaultPlan drop_only = parseFaultPlan("seed=7,rate=0.5,kinds=drop");
    FaultPlan both = parseFaultPlan("seed=7,rate=0.5,kinds=drop+stall");
    FaultInjector a(drop_only), b(both);
    for (int i = 0; i < 500; ++i) {
        b.fire(kPeStall);  // extra traffic on the stall stream
        EXPECT_EQ(a.fire(kBusDrop), b.fire(kBusDrop)) << "draw " << i;
    }
}

TEST(FaultInjector, CorruptWordFlipsExactlyOneBit)
{
    FaultPlan plan = parseFaultPlan("seed=3,rate=1.0,kinds=corrupt");
    FaultInjector injector(plan);
    for (int i = 0; i < 200; ++i) {
        std::uint32_t value = 0x12345678u + static_cast<std::uint32_t>(i);
        std::uint32_t corrupted = injector.corruptWord(value);
        EXPECT_NE(corrupted, value);
        EXPECT_EQ(__builtin_popcount(corrupted ^ value), 1);
    }
}

TEST(FaultInjector, DroppedAttemptsStayOutOfDeliveredAccounting)
{
    // The delivered-level distributions (bus.remote_transfers and the
    // hops/queue_wait/latency histograms) must count only messages
    // that actually arrived; attempts the fault model eats go to
    // bus.dropped_attempt. Booking per attempt instead of per delivery
    // was the historical bug: dropped attempts inflated the latency
    // distributions with phantom deliveries.
    FaultPlan plan = parseFaultPlan("seed=11,rate=0.4,kinds=drop");
    plan.maxRetries = 2;
    FaultInjector injector(plan);
    mp::RingBus bus({4, 2, 4, 2});
    bus.setFaultInjector(&injector);
    std::uint64_t delivered = 0;
    for (int i = 0; i < 300; ++i) {
        mp::BusDelivery d = bus.deliver(0, 2, i * 64);
        if (d.delivered)
            ++delivered;
    }
    const StatSet &stats = bus.stats();
    EXPECT_EQ(stats.counter("bus.remote_transfers"), delivered);
    EXPECT_EQ(stats.histogram("bus.hops").count(), delivered);
    EXPECT_EQ(stats.histogram("bus.queue_wait").count(), delivered);
    EXPECT_EQ(stats.histogram("bus.latency").count(), delivered);
    // Every drop the injector recorded is a dropped attempt, and with
    // rate=0.4 over 300 sends there must be plenty of them.
    EXPECT_EQ(stats.counter("bus.dropped_attempt"),
              stats.counter("fault.bus_drop"));
    EXPECT_GT(stats.counter("bus.dropped_attempt"), 0u);
    // Occupancy-level accounting still covers every attempt: the ring
    // was busy for dropped attempts too.
    EXPECT_GE(stats.counter("bus.hop_count"),
              stats.histogram("bus.hops").count());
}

// ---------------------------------------------------------------------
// System-level fixtures

/** Parent rforks a child, sends two values, receives the sum (the
 *  mp_test rendezvous fixture). Multi-PE runs ship the child and its
 *  messages across the ring bus, exercising the fault path. */
const char *kForkAddProgram =
    "main:\n"
    "  trap #1,@child :r17\n"
    "  send r17,#30\n"
    "  send r17,#12\n"
    "  plus r17,#1 :r18\n"
    "  recv r18 :r19\n"
    "  store #6291456,r19\n"
    "  trap #0,#0\n"
    "child:\n"
    "  trap #3,#0 :r17\n"
    "  trap #4,#0 :r18\n"
    "  recv r17 :r0\n"
    "  recv r17 :r1\n"
    "  plus++ r0,r1 :r19\n"
    "  send r18,r19\n"
    "  trap #0,#0\n";

mp::RunResult
runForkAdd(const fault::FaultPlan &plan, int pes,
           bool trace = false, mp::System **system_out = nullptr,
           const fault::RecoveryPlan &recovery = {})
{
    static isa::ObjectCode code = isa::assemble(kForkAddProgram);
    mp::SystemConfig config;
    config.numPes = pes;
    config.faultPlan = plan;
    config.recovery = recovery;
    config.traceConfig.enabled = trace;
    static std::unique_ptr<mp::System> keep;
    keep = std::make_unique<mp::System>(code, config);
    if (system_out)
        *system_out = keep.get();
    mp::RunResult result = keep->run("main");
    // The bounded retry-from-checkpoint loop every recovery-aware
    // driver (sim::runOnce, occamc) wraps around System::run.
    int replays = 0;
    while (!result.completed && recovery.enabled &&
           keep->replayable() && keep->canRestore() &&
           replays < recovery.maxReplays) {
        keep->restore();
        ++replays;
        result = keep->resume();
    }
    return result;
}

TEST(FaultSystem, WatchdogConvertsCertainLossIntoCleanFailure)
{
    // Every remote transfer drops, beyond the retry bound: the child
    // context is lost in shipment and the parent starves. Without
    // faults this would be a fatal deadlock; with them it must be a
    // structured failure.
    FaultPlan plan = parseFaultPlan("seed=11,rate=1.0,kinds=drop");
    mp::RunResult result = runForkAdd(plan, 2);
    EXPECT_FALSE(result.completed);
    EXPECT_TRUE(result.watchdogTripped);
    EXPECT_FALSE(result.failureReason.empty());
    EXPECT_GE(result.faultsInjected, 1u);
    // At rate=1.0 every retry drops too, so nothing is ever delivered:
    // the drops are all detected but none recovered (faultRecoveries
    // counts real end-to-end recoveries, not retry attempts).
    EXPECT_EQ(result.faultRecoveries, 0u);
    const auto &drop = result.faultKinds[0];  // kBusDrop = bit 0
    EXPECT_GE(drop.injected, 1u);
    EXPECT_GE(drop.detected, 1u);
    EXPECT_EQ(drop.recovered, 0u);
}

TEST(FaultSystem, CorruptionIsDetectedAndReported)
{
    // Every token in the message cache is corrupted after its checksum
    // is recorded; the first receive must detect the mismatch and end
    // the run cleanly (detect-and-fail: there is no redundant copy).
    FaultPlan plan = parseFaultPlan("seed=2,rate=1.0,kinds=corrupt");
    mp::RunResult result = runForkAdd(plan, 1);
    EXPECT_FALSE(result.completed);
    EXPECT_FALSE(result.watchdogTripped);
    EXPECT_NE(result.failureReason.find("corruption"),
              std::string::npos)
        << result.failureReason;
    EXPECT_GE(result.faultsInjected, 1u);
}

TEST(FaultSystem, LocalRunsAreImmuneToBusFaults)
{
    // Bus faults only touch remote transfers; a 1-PE run has none, so
    // even rate=1.0 drop must complete and produce 42.
    FaultPlan plan = parseFaultPlan("seed=4,rate=1.0,kinds=drop");
    mp::System *system = nullptr;
    mp::RunResult result = runForkAdd(plan, 1, false, &system);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system->memory().readWord(mp::kDataBase), 42u);
}

TEST(FaultSystem, ValuePreservingFaultsStillComputeTheSum)
{
    // Duplication, delay, and stalls perturb timing but never values:
    // when the run completes the answer must be exact.
    FaultPlan plan =
        parseFaultPlan("seed=21,rate=0.2,kinds=dup+delay+stall");
    mp::System *system = nullptr;
    mp::RunResult result = runForkAdd(plan, 4, false, &system);
    ASSERT_TRUE(result.completed) << result.failureReason;
    EXPECT_EQ(system->memory().readWord(mp::kDataBase), 42u);
    EXPECT_GE(result.faultsInjected, 1u);
}

TEST(FaultSystem, TraceRecordsInjectionsAndRecoveries)
{
    FaultPlan plan = parseFaultPlan("seed=11,rate=1.0,kinds=drop");
    mp::System *system = nullptr;
    mp::RunResult result = runForkAdd(plan, 2, /*trace=*/true, &system);
    EXPECT_FALSE(result.completed);
    std::string summary = system->tracer().summary();
    EXPECT_NE(summary.find("fault-inject"), std::string::npos)
        << summary;
    EXPECT_NE(summary.find("fault-recover"), std::string::npos)
        << summary;
    // The event stream carries the machine-readable schedule too.
    std::uint64_t injects = 0, recoveries = 0;
    for (const trace::Event &e : system->tracer().events()) {
        if (e.kind == trace::EventKind::FaultInject)
            ++injects;
        if (e.kind == trace::EventKind::FaultRecover)
            ++recoveries;
    }
    EXPECT_GE(injects, result.faultsInjected);
    EXPECT_GE(recoveries, 1u);
}

TEST(FaultSystem, SameSeedReplaysTheIdenticalTrace)
{
    FaultPlan plan =
        parseFaultPlan("seed=33,rate=0.3,kinds=drop+dup+delay+stall");
    std::vector<trace::Event> first;
    mp::RunResult r1, r2;
    {
        mp::System *system = nullptr;
        r1 = runForkAdd(plan, 4, /*trace=*/true, &system);
        first = system->tracer().events();
    }
    mp::System *system = nullptr;
    r2 = runForkAdd(plan, 4, /*trace=*/true, &system);
    const std::vector<trace::Event> &second = system->tracer().events();

    EXPECT_EQ(r1.completed, r2.completed);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_EQ(r1.faultsInjected, r2.faultsInjected);
    EXPECT_EQ(r1.faultRecoveries, r2.faultRecoveries);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].kind, second[i].kind) << "event " << i;
        EXPECT_EQ(first[i].pe, second[i].pe) << "event " << i;
        EXPECT_EQ(first[i].ctx, second[i].ctx) << "event " << i;
        EXPECT_EQ(first[i].at, second[i].at) << "event " << i;
        EXPECT_EQ(first[i].a, second[i].a) << "event " << i;
        EXPECT_EQ(first[i].b, second[i].b) << "event " << i;
    }
}

// ---------------------------------------------------------------------
// Experiment-runner integration and the chaos suite

void
expectReportsEqual(const sim::RunReport &a, const sim::RunReport &b,
                   const std::string &label)
{
    EXPECT_EQ(a.completed, b.completed) << label;
    EXPECT_EQ(a.verified, b.verified) << label;
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.instructions, b.instructions) << label;
    EXPECT_EQ(a.contexts, b.contexts) << label;
    EXPECT_EQ(a.rendezvous, b.rendezvous) << label;
    EXPECT_EQ(a.contextSwitches, b.contextSwitches) << label;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << label;
    EXPECT_EQ(a.kernelCycles, b.kernelCycles) << label;
    EXPECT_EQ(a.blockedCycles, b.blockedCycles) << label;
    EXPECT_EQ(a.busCycles, b.busCycles) << label;
    EXPECT_EQ(a.watchdogTripped, b.watchdogTripped) << label;
    EXPECT_EQ(a.failureReason, b.failureReason) << label;
    EXPECT_EQ(a.faultsInjected, b.faultsInjected) << label;
    EXPECT_EQ(a.faultRecoveries, b.faultRecoveries) << label;
    EXPECT_EQ(a.recovered, b.recovered) << label;
    EXPECT_EQ(a.replays, b.replays) << label;
    for (int k = 0; k < fault::kNumFaultKinds; ++k) {
        const auto &ka = a.faultKinds[static_cast<std::size_t>(k)];
        const auto &kb = b.faultKinds[static_cast<std::size_t>(k)];
        EXPECT_EQ(ka.injected, kb.injected) << label << " kind " << k;
        EXPECT_EQ(ka.detected, kb.detected) << label << " kind " << k;
        EXPECT_EQ(ka.recovered, kb.recovered) << label << " kind " << k;
    }
}

TEST(FaultChaos, ScheduleIsIndependentOfJobCount)
{
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    mp::SystemConfig config;
    config.faultPlan =
        parseFaultPlan("seed=5,rate=0.05,kinds=drop+delay+stall");
    std::vector<sim::RunSpec> specs;
    for (int pes : {1, 2, 4}) {
        sim::RunSpec spec;
        spec.program = &program;
        spec.resultArray = bench.resultArray;
        spec.expected = bench.expected;
        spec.pes = pes;
        spec.config = config;
        specs.push_back(std::move(spec));
    }
    std::vector<sim::RunReport> serial = sim::runAll(specs, 1);
    std::vector<sim::RunReport> parallel = sim::runAll(specs, 3);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectReportsEqual(serial[i], parallel[i],
                           "pes=" + std::to_string(serial[i].pes));
}

TEST(FaultChaos, DisabledPlanIsByteIdenticalToBaseline)
{
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    sim::RunReport baseline =
        sim::runOnce(program, bench.resultArray, bench.expected, 4, {});
    mp::SystemConfig zero_rate;
    zero_rate.faultPlan.seed = 123;  // rate stays 0: disabled
    sim::RunReport with_plan = sim::runOnce(
        program, bench.resultArray, bench.expected, 4, zero_rate);
    expectReportsEqual(baseline, with_plan, "disabled plan");
    EXPECT_TRUE(baseline.verified);
    EXPECT_EQ(baseline.faultsInjected, 0u);
}

TEST(FaultChaos, RunAllSurvivesFailingRuns)
{
    // pes=1 is immune to bus drops (all transfers local); pes=4 at
    // rate=1.0 drop must fail cleanly. The sweep reports both rows
    // instead of dying on the failure.
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    mp::SystemConfig config;
    config.faultPlan = parseFaultPlan("seed=9,rate=1.0,kinds=drop");
    config.watchdogCycles = 100'000;
    std::vector<sim::RunSpec> specs;
    for (int pes : {1, 4}) {
        sim::RunSpec spec;
        spec.program = &program;
        spec.resultArray = bench.resultArray;
        spec.expected = bench.expected;
        spec.pes = pes;
        spec.config = config;
        specs.push_back(std::move(spec));
    }
    std::vector<sim::RunReport> reports = sim::runAll(specs, 1);
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_TRUE(reports[0].verified) << reports[0].failureReason;
    EXPECT_FALSE(reports[1].completed);
    EXPECT_FALSE(reports[1].verified);
    EXPECT_FALSE(reports[1].failureReason.empty());
}

// ---------------------------------------------------------------------
// The recovery layer (RecoveryPlan): reliable delivery, heal, dedup,
// fail-stop restart, and checkpoint replay.

constexpr std::size_t kDropIdx = 0;     // kBusDrop    = 1u << 0
constexpr std::size_t kDupIdx = 1;      // kBusDup     = 1u << 1
constexpr std::size_t kCorruptIdx = 3;  // kCacheCorrupt = 1u << 3
constexpr std::size_t kPeKillIdx = 5;   // kPeKill     = 1u << 5

TEST(FaultRecovery, ResendsThroughHeavyLoss)
{
    // Heavy loss beyond the link retry bound starves the baseline;
    // with recovery the end-to-end ack/retransmit keeps resending
    // until the token lands, and the run completes exactly.
    FaultPlan plan = parseFaultPlan("seed=11,rate=0.85,kinds=drop,"
                                    "retries=1");
    mp::RunResult baseline = runForkAdd(plan, 2);
    EXPECT_FALSE(baseline.completed);
    EXPECT_TRUE(baseline.watchdogTripped);

    RecoveryPlan recovery;
    recovery.enabled = true;
    mp::System *system = nullptr;
    mp::RunResult result =
        runForkAdd(plan, 2, false, &system, recovery);
    ASSERT_TRUE(result.completed) << result.failureReason;
    EXPECT_EQ(system->memory().readWord(mp::kDataBase), 42u);
    const auto &drop = result.faultKinds[kDropIdx];
    EXPECT_GE(drop.detected, 1u);
    EXPECT_GE(drop.recovered, 1u);
    EXPECT_GE(result.faultRecoveries, drop.recovered);
}

TEST(FaultRecovery, HealsEveryCorruptToken)
{
    // rate=1.0 corrupts every token in the cache. The baseline dies on
    // the first checksum mismatch; with recovery each receive heals
    // from the sender's pristine copy and the sum is exact.
    FaultPlan plan = parseFaultPlan("seed=2,rate=1.0,kinds=corrupt");
    mp::RunResult baseline = runForkAdd(plan, 1);
    EXPECT_FALSE(baseline.completed);

    RecoveryPlan recovery;
    recovery.enabled = true;
    mp::System *system = nullptr;
    mp::RunResult result =
        runForkAdd(plan, 1, false, &system, recovery);
    ASSERT_TRUE(result.completed) << result.failureReason;
    EXPECT_EQ(system->memory().readWord(mp::kDataBase), 42u);
    const auto &corrupt = result.faultKinds[kCorruptIdx];
    EXPECT_GE(corrupt.detected, 3u);  // three rendezvous values
    EXPECT_EQ(corrupt.detected, corrupt.recovered);
}

TEST(FaultRecovery, RejectsDuplicateTokensBySequence)
{
    // rate=1.0 duplicates every bus delivery. The baseline survives
    // only because deliveries are idempotent by construction (a
    // structural accident of the wake protocol); the recovery layer
    // additionally duplicates cache deposits and rejects each one by
    // sequence number, turning idempotence into a checked protocol
    // property with explicit detect/recover accounting.
    FaultPlan plan = parseFaultPlan("seed=6,rate=1.0,kinds=dup");
    mp::RunResult baseline = runForkAdd(plan, 2);
    EXPECT_GE(baseline.faultsInjected, 1u);
    EXPECT_EQ(baseline.faultKinds[kDupIdx].detected, 0u)
        << "baseline has no dedup protocol, nothing to detect";

    RecoveryPlan recovery;
    recovery.enabled = true;
    mp::System *system = nullptr;
    mp::RunResult result =
        runForkAdd(plan, 2, false, &system, recovery);
    ASSERT_TRUE(result.completed) << result.failureReason;
    EXPECT_EQ(system->memory().readWord(mp::kDataBase), 42u);
    const auto &dup = result.faultKinds[kDupIdx];
    EXPECT_GE(dup.detected, 1u);
    EXPECT_EQ(dup.detected, dup.recovered);
}

TEST(FaultRecovery, RestartsSpansAcrossPeFailStop)
{
    // Kill each PE in turn at a sweep of cycles inside the ~61-cycle
    // run. Whenever the fail-stop strands the baseline, the lease
    // detector must re-home the dead PE's contexts and the span
    // restart must reproduce the exact sum; kills of an idle or
    // already-drained PE are absorbed without needing detection.
    RecoveryPlan recovery;
    recovery.enabled = true;
    int baseline_failures = 0;
    for (int kill_pe = 0; kill_pe < 4; ++kill_pe) {
        for (Cycle kill_at : {10, 20, 30, 40, 50}) {
            FaultPlan plan = parseFaultPlan(
                "seed=1,killat=" + std::to_string(kill_at) +
                ",killpe=" + std::to_string(kill_pe));
            std::string label = "killpe=" + std::to_string(kill_pe) +
                                " killat=" + std::to_string(kill_at);
            mp::RunResult baseline = runForkAdd(plan, 4);
            mp::System *system = nullptr;
            mp::RunResult result =
                runForkAdd(plan, 4, false, &system, recovery);
            ASSERT_TRUE(result.completed)
                << label << ": " << result.failureReason;
            EXPECT_EQ(system->memory().readWord(mp::kDataBase), 42u)
                << label;
            if (!baseline.completed) {
                ++baseline_failures;
                EXPECT_EQ(result.faultKinds[kPeKillIdx].detected, 1u)
                    << label;
            }
        }
    }
    // The sweep must actually exercise recovery, not just absorb
    // harmless kills.
    EXPECT_GE(baseline_failures, 5);
}

TEST(FaultRecovery, FailStopWithoutRecoveryIsACleanFailure)
{
    // Killing the main context's PE mid-run strands the rendezvous;
    // without recovery this must surface as a watchdog-style clean
    // failure, never a hang or a wrong answer.
    FaultPlan plan = parseFaultPlan("seed=1,killat=20,killpe=0");
    mp::RunResult result = runForkAdd(plan, 4);
    EXPECT_FALSE(result.completed);
    EXPECT_TRUE(result.watchdogTripped);
    EXPECT_FALSE(result.failureReason.empty());
}

TEST(FaultRecovery, ChaosWithCheckpointsCompletesExactly)
{
    // The full storm - loss, duplication, corruption, and a fail-stop
    // - over periodic checkpoints: every benchmark must still produce
    // the exact reference result.
    mp::SystemConfig config;
    config.faultPlan = parseFaultPlan(
        "seed=5,rate=0.5,kinds=drop+dup+corrupt,retries=1,killat=1000");
    config.recovery.enabled = true;
    config.recovery.checkpointEvery = 500;
    for (const programs::Benchmark &bench :
         programs::thesisBenchmarks()) {
        occam::CompiledProgram program =
            occam::compileOccam(bench.source);
        sim::RunReport report = sim::runOnce(
            program, bench.resultArray, bench.expected, 4, config);
        EXPECT_TRUE(report.completed)
            << bench.name << ": " << report.failureReason;
        EXPECT_TRUE(report.verified) << bench.name;
    }
}

TEST(FaultRecovery, RecoveredRunsAreDeterministic)
{
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    mp::SystemConfig config;
    config.faultPlan = parseFaultPlan(
        "seed=5,rate=0.5,kinds=drop+dup+corrupt,retries=1,killat=800");
    config.recovery.enabled = true;
    config.recovery.checkpointEvery = 400;
    sim::RunReport first = sim::runOnce(
        program, bench.resultArray, bench.expected, 4, config);
    sim::RunReport second = sim::runOnce(
        program, bench.resultArray, bench.expected, 4, config);
    EXPECT_TRUE(first.verified) << first.failureReason;
    expectReportsEqual(first, second, "repeat recovered run");
}

TEST(FaultRecovery, RecoveredScheduleIsIndependentOfJobCount)
{
    // The acceptance bar for sweeps: a faulty run that needed the
    // recovery layer reports byte-identical rows for any --jobs.
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    mp::SystemConfig config;
    config.faultPlan = parseFaultPlan(
        "seed=7,rate=0.5,kinds=drop+dup+corrupt,retries=1,killat=900");
    config.recovery.enabled = true;
    config.recovery.checkpointEvery = 600;
    std::vector<sim::RunSpec> specs;
    for (int pes : {2, 4, 8}) {
        sim::RunSpec spec;
        spec.program = &program;
        spec.resultArray = bench.resultArray;
        spec.expected = bench.expected;
        spec.pes = pes;
        spec.config = config;
        specs.push_back(std::move(spec));
    }
    std::vector<sim::RunReport> serial = sim::runAll(specs, 1);
    std::vector<sim::RunReport> parallel = sim::runAll(specs, 3);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        expectReportsEqual(serial[i], parallel[i],
                           "pes=" + std::to_string(serial[i].pes));
        EXPECT_TRUE(serial[i].verified) << serial[i].failureReason;
    }
}

// ---------------------------------------------------------------------
// The pinned recovery corpus: specs that fail with watchdogTripped on
// the detect-and-fail baseline and must complete exactly under
// recovery. CI soaks exactly this list under ASan+UBSan
// (--gtest_filter=FaultRecovery.PinnedCorpus*).

const char *const kRecoveryCorpus[] = {
    "seed=3,rate=0.5,kinds=drop,retries=1",
    "seed=9,rate=0.6,kinds=drop,retries=0",
    "seed=17,rate=0.7,kinds=drop,retries=1",
    "seed=4,rate=0.5,kinds=drop+dup,retries=1",
    "seed=12,rate=0.6,kinds=drop+dup,retries=0",
    "seed=33,rate=0.7,kinds=drop+corrupt,retries=0",
    "seed=21,rate=0.8,kinds=drop+dup+corrupt,retries=0",
    "seed=8,rate=0.7,kinds=drop+dup+corrupt,retries=0,killat=900",
    "seed=2,killat=600,killpe=0",
    "seed=13,killat=1200,killpe=2",
    "seed=30,rate=0.4,kinds=drop,retries=0,killat=700",
    "seed=42,rate=0.5,kinds=drop+dup,retries=1,killat=1100",
};

TEST(FaultRecovery, PinnedCorpusFailsOnBaseline)
{
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    for (const char *spec : kRecoveryCorpus) {
        mp::SystemConfig config;
        config.faultPlan = parseFaultPlan(spec);
        config.watchdogCycles = 200'000;
        sim::RunReport report = sim::runOnce(
            program, bench.resultArray, bench.expected, 4, config);
        EXPECT_FALSE(report.completed) << spec;
        EXPECT_TRUE(report.watchdogTripped) << spec;
    }
}

TEST(FaultRecovery, PinnedCorpusRecoversExactly)
{
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    for (const char *spec : kRecoveryCorpus) {
        mp::SystemConfig config;
        config.faultPlan = parseFaultPlan(spec);
        config.recovery.enabled = true;
        config.recovery.checkpointEvery = 500;
        // The heaviest corpus entries lose >70% of deliveries with no
        // link retries; give the end-to-end retransmitter enough
        // attempts that per-token loss is negligible (0.8^65 ~ 5e-7).
        config.recovery.maxResends = 64;
        sim::RunReport report = sim::runOnce(
            program, bench.resultArray, bench.expected, 4, config);
        EXPECT_TRUE(report.completed)
            << spec << ": " << report.failureReason;
        EXPECT_TRUE(report.verified) << spec;
    }
}

TEST(FaultRecovery, PartitionedPinnedCorpusRecoversExactly)
{
    // The multi-partition half of the pinned corpus: hierarchical
    // machines where recovery retransmits and fail-stop re-dispatch
    // must cross ring bridges. Shared with core_differential_test,
    // which replays the same entries under both simulation cores.
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    for (const fuzz::PartitionedRecoverySpec &entry :
         fuzz::kPartitionedRecoveryCorpus) {
        SCOPED_TRACE(entry.faults);
        mp::SystemConfig config;
        config.faultPlan = parseFaultPlan(entry.faults);
        config.setTopology({entry.rings, entry.partitions});
        config.recovery.enabled = true;
        config.recovery.checkpointEvery = 500;
        config.recovery.maxResends = 64;
        sim::RunReport report =
            sim::runOnce(program, bench.resultArray, bench.expected,
                         entry.pes, config);
        EXPECT_TRUE(report.completed) << report.failureReason;
        EXPECT_TRUE(report.verified);
        if (config.faultPlan.kinds & fault::kPeKill) {
            // The kill must actually have fired and been recovered.
            EXPECT_GT(report.stats.counter("fault.pe_kill"), 0u);
        }
    }
}

TEST(FaultChaos, EveryBenchmarkCompletesCorrectOrFailsCleanly)
{
    // The soak property: under value-preserving faults every Chapter 6
    // benchmark either produces the exact reference result or ends in
    // a structured failure - never a wrong answer, hang, or crash.
    mp::SystemConfig config;
    config.faultPlan =
        parseFaultPlan("seed=1234,rate=0.05,kinds=drop+dup+delay+stall");
    config.watchdogCycles = 500'000;
    for (const programs::Benchmark &bench :
         programs::thesisBenchmarks()) {
        occam::CompiledProgram program =
            occam::compileOccam(bench.source);
        sim::RunReport report = sim::runOnce(
            program, bench.resultArray, bench.expected, 4, config);
        if (report.completed) {
            EXPECT_TRUE(report.verified)
                << bench.name
                << ": faulty run completed with a WRONG result";
        } else {
            EXPECT_FALSE(report.failureReason.empty()) << bench.name;
        }
    }
}

} // namespace
