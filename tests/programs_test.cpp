/**
 * @file
 * Correctness tests for the Chapter 6 benchmark programs: each OCCAM
 * source compiles and computes the reference result on the simulated
 * multiprocessor at several PE counts.
 */
#include <gtest/gtest.h>

#include "mp/system.hpp"
#include "occam/compiler.hpp"
#include "programs/benchmarks.hpp"

namespace {

using namespace qm;
using namespace qm::programs;

std::vector<std::int32_t>
runAndRead(const std::string &source, const std::string &array,
           std::size_t count, int pes,
           const occam::CompileOptions &options = {},
           mp::RunResult *out_result = nullptr)
{
    occam::CompiledProgram program = occam::compileOccam(source, options);
    mp::SystemConfig config;
    config.numPes = pes;
    mp::System system(program.object, config);
    mp::RunResult result = system.run(program.mainLabel);
    EXPECT_TRUE(result.completed);
    if (out_result)
        *out_result = result;
    std::vector<std::int32_t> values;
    isa::Addr base = program.arrayAddress(array);
    for (std::size_t i = 0; i < count; ++i)
        values.push_back(static_cast<std::int32_t>(
            system.memory().readWord(
                base + static_cast<isa::Addr>(i) * 4)));
    return values;
}

class BenchmarkSuiteTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(BenchmarkSuiteTest, ComputesReferenceResult)
{
    auto [bench_index, pes] = GetParam();
    Benchmark bench =
        thesisBenchmarks()[static_cast<size_t>(bench_index)];
    auto values = runAndRead(bench.source, bench.resultArray,
                             bench.expected.size(), pes);
    EXPECT_EQ(values, bench.expected) << bench.name << " @ " << pes
                                      << " PEs";
}

std::string
benchCaseName(
    const ::testing::TestParamInfo<std::tuple<int, int>> &info)
{
    static const char *names[] = {"matmul", "fft", "cholesky",
                                  "congruence"};
    return std::string(names[std::get<0>(info.param)]) + "_" +
           std::to_string(std::get<1>(info.param)) + "pe";
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkSuiteTest,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(1, 2, 4, 8)),
    benchCaseName);

TEST(BinaryFan, RecursiveAndIterativeAgree)
{
    auto recursive = runAndRead(binaryFanRecursiveSource(), "v", 16, 4);
    auto iterative = runAndRead(binaryFanIterativeSource(), "v", 16, 4);
    EXPECT_EQ(recursive, expectedBinaryFan());
    EXPECT_EQ(iterative, expectedBinaryFan());
}

TEST(BinaryFan, RecursiveCreatesMoreContexts)
{
    mp::RunResult rec, it;
    runAndRead(binaryFanRecursiveSource(), "v", 16, 4, {}, &rec);
    runAndRead(binaryFanIterativeSource(), "v", 16, 4, {}, &it);
    // The recursive version builds the whole call tree (internal nodes
    // plus leaves); the iterative version forks only the leaves.
    EXPECT_GT(rec.contexts, it.contexts);
}

TEST(BenchmarkSuite, OptimizationAblationsPreserveResults)
{
    // The Table 6.6 knobs change performance, never answers.
    Benchmark bench = thesisBenchmarks()[0];  // matmul
    for (int knob = 0; knob < 3; ++knob) {
        occam::CompileOptions options;
        if (knob == 0)
            options.liveAnalysis = false;
        if (knob == 1)
            options.inputSequencing = false;
        if (knob == 2)
            options.priorityScheduling = false;
        auto values = runAndRead(bench.source, bench.resultArray,
                                 bench.expected.size(), 4, options);
        EXPECT_EQ(values, bench.expected) << "knob " << knob;
    }
}

TEST(BenchmarkSuite, MorePesNeverChangesResultsButReducesCycles)
{
    Benchmark bench = thesisBenchmarks()[0];
    mp::RunResult one, eight;
    runAndRead(bench.source, bench.resultArray, bench.expected.size(),
               1, {}, &one);
    runAndRead(bench.source, bench.resultArray, bench.expected.size(),
               8, {}, &eight);
    EXPECT_LT(eight.cycles, one.cycles);
    // Instruction counts differ only by channel-retry overhead (a
    // blocked send/recv re-executes when rescheduled), so they stay
    // within a small factor of each other.
    EXPECT_GT(eight.instructions, one.instructions / 2);
    EXPECT_LT(eight.instructions, one.instructions * 2);
}

} // namespace
