/**
 * @file
 * End-to-end tests for the performance observability layer: the qmprof
 * analyzer on a real (pinned) two-PE program, the metrics JSON
 * exporter's determinism across worker counts, and per-spec trace
 * templating in parallel sweeps.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "mp/system.hpp"
#include "occam/compiler.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "support/diagnostics.hpp"
#include "trace/analyze.hpp"
#include "trace/export.hpp"

namespace {

using namespace qm;

/**
 * The pinned profiling subject: a two-stage channel pipeline that
 * forks real contexts, rendezvouses 8 times, and verifies through the
 * data segment. Deterministic at any PE count.
 */
const char *kPipelineSource =
    "var results[2]:\n"
    "chan a:\n"
    "var total:\n"
    "seq\n"
    "  total := 0\n"
    "  par\n"
    "    seq i = [1 for 8]\n"
    "      a ! i * i\n"
    "    seq j = [1 for 8]\n"
    "      var x:\n"
    "      seq\n"
    "        a ? x\n"
    "        total := total + x\n"
    "  results[0] := total\n"
    "  results[1] := 8\n";

/** 1^2 + ... + 8^2. */
constexpr std::int32_t kSumOfSquares = 204;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(Qmprof, CriticalPathNeverExceedsRunCycles)
{
    occam::CompiledProgram program =
        occam::compileOccam(kPipelineSource);
    mp::SystemConfig config;
    config.numPes = 2;
    config.traceConfig.enabled = true;
    mp::System system(program.object, config);
    mp::RunResult result = system.run(program.mainLabel);
    ASSERT_TRUE(result.completed);

    trace::Profile profile =
        trace::analyzeTrace(system.tracer().events());
    // The acceptance invariant: the critical path is a time-respecting
    // backward walk, so its length can never exceed the run's cycles.
    EXPECT_GT(profile.criticalPathCycles, 0);
    EXPECT_LE(profile.criticalPathCycles, result.cycles);
    EXPECT_LE(profile.totalCycles, result.cycles);
    EXPECT_EQ(profile.finished,
              static_cast<std::uint64_t>(result.contexts));
    EXPECT_TRUE(profile.starved.empty());
    EXPECT_EQ(profile.numPes, 2);
}

TEST(Qmprof, ReportIsDeterministicAndFileRoundTripsExactly)
{
    occam::CompiledProgram program =
        occam::compileOccam(kPipelineSource);
    std::string renders[2];
    for (int attempt = 0; attempt < 2; ++attempt) {
        mp::SystemConfig config;
        config.numPes = 2;
        config.traceConfig.enabled = true;
        mp::System system(program.object, config);
        ASSERT_TRUE(system.run(program.mainLabel).completed);
        renders[attempt] =
            trace::analyzeTrace(system.tracer().events()).render();
        if (attempt == 0) {
            // Round-trip through the Chrome JSON file and re-analyze:
            // the report must match the live one byte for byte.
            std::string path =
                testing::TempDir() + "/qmprof_pinned.json";
            trace::writeChromeTraceFile(path, system.tracer());
            trace::Profile fromFile =
                trace::analyzeTrace(trace::loadChromeTrace(path));
            EXPECT_EQ(fromFile.render(), renders[0]);
            std::remove(path.c_str());
        }
    }
    // Two fresh simulations of the pinned program profile identically.
    EXPECT_EQ(renders[0], renders[1]);
    EXPECT_NE(renders[0].find("critical path:"), std::string::npos);
    EXPECT_NE(renders[0].find("top contexts by blocked time:"),
              std::string::npos);
}

TEST(Qmprof, HierarchicalTraceAttributesBusAndMigrations)
{
    // On a hierarchical machine the profile gains the ring-bus
    // section: wire cycles, bridge/backbone wait, and (when recovery
    // migrates contexts) cross-shard migrations. It must survive the
    // file round-trip like every other section.
    occam::CompiledProgram program =
        occam::compileOccam(kPipelineSource);
    mp::SystemConfig config;
    config.numPes = 8;
    config.setTopology({4, 1});
    config.traceConfig.enabled = true;
    mp::System system(program.object, config);
    ASSERT_TRUE(system.run(program.mainLabel).completed);

    trace::Profile profile =
        trace::analyzeTrace(system.tracer().events());
    EXPECT_GT(profile.busTransfers, 0u);
    EXPECT_GT(profile.busCycles, 0);
    std::string render = profile.render();
    EXPECT_NE(render.find("ring bus:"), std::string::npos);
    EXPECT_NE(render.find("cycles on the wire"), std::string::npos);

    std::string path = testing::TempDir() + "/qmprof_hier.json";
    trace::writeChromeTraceFile(path, system.tracer());
    trace::Profile from_file =
        trace::analyzeTrace(trace::loadChromeTrace(path));
    EXPECT_EQ(from_file.render(), render);
    std::remove(path.c_str());

    // Flat two-PE traces stay bus-quiet in the report: the section is
    // gated, so pre-topology renders are unchanged.
    mp::SystemConfig flat;
    flat.numPes = 1;
    flat.traceConfig.enabled = true;
    mp::System local(program.object, flat);
    ASSERT_TRUE(local.run(program.mainLabel).completed);
    EXPECT_EQ(trace::analyzeTrace(local.tracer().events())
                  .render()
                  .find("ring bus:"),
              std::string::npos);
}

TEST(Metrics, JsonIsByteIdenticalAcrossJobCounts)
{
    std::vector<sim::SpeedupSeries> series_by_jobs;
    for (int jobs : {1, 4}) {
        series_by_jobs.push_back(sim::runSpeedupSweep(
            "pipeline", kPipelineSource, "results",
            {kSumOfSquares, 8}, {1, 2, 4}, {}, {}, jobs));
    }
    std::string paths[2];
    for (int i = 0; i < 2; ++i) {
        paths[i] = testing::TempDir() + "/qm_metrics_" +
                   std::to_string(i) + ".json";
        sim::writeMetricsJson("determinism", {series_by_jobs[
            static_cast<std::size_t>(i)]}, paths[i]);
    }
    std::string serial = readFile(paths[0]);
    std::string parallel = readFile(paths[1]);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // Sanity: the document carries the schema tag and histograms.
    EXPECT_NE(serial.find(sim::kMetricsSchema), std::string::npos);
    EXPECT_NE(serial.find("\"histograms\""), std::string::npos);
    EXPECT_NE(serial.find("msg.latency"), std::string::npos);
    EXPECT_NE(serial.find("pe1.ready_wait"), std::string::npos);
    for (const std::string &path : paths)
        std::remove(path.c_str());
}

TEST(Metrics, HistogramsRecordTheInstrumentedPaths)
{
    sim::SpeedupSeries series = sim::runSpeedupSweep(
        "pipeline", kPipelineSource, "results", {kSumOfSquares, 8},
        {4});
    ASSERT_EQ(series.runs.size(), 1u);
    const StatSet &stats = series.runs[0].stats;
    // Message latency, ring-bus, scheduling, and trap-service
    // histograms all populate on a multi-PE channel program.
    EXPECT_TRUE(stats.hasHistogram("msg.latency"));
    EXPECT_TRUE(stats.hasHistogram("msg.fifo_depth"));
    EXPECT_TRUE(stats.hasHistogram("bus.hops"));
    EXPECT_TRUE(stats.hasHistogram("bus.latency"));
    EXPECT_TRUE(stats.hasHistogram("sys.ready_wait"));
    EXPECT_TRUE(stats.hasHistogram("sys.residency"));
    EXPECT_TRUE(stats.hasHistogram("pe.trap_service"));
    EXPECT_TRUE(stats.hasHistogram("pe0.ready_wait"));
    EXPECT_GT(stats.histogram("msg.latency").count(), 0u);
    EXPECT_GT(stats.histogram("pe.trap_service").count(), 0u);
    // Latencies are cycle counts: bounded by the run itself.
    EXPECT_LE(stats.histogram("msg.latency").max(),
              static_cast<std::uint64_t>(series.runs[0].cycles));
}

TEST(Sweep, TraceDirWritesOneTracePerRunUnderParallelJobs)
{
    std::string dir = testing::TempDir();
    sim::SpeedupSeries series = sim::runSpeedupSweep(
        "pipe line!", kPipelineSource, "results", {kSumOfSquares, 8},
        {1, 2}, {}, {}, /*jobs=*/2, dir);
    ASSERT_EQ(series.runs.size(), 2u);
    for (const sim::RunReport &run : series.runs)
        EXPECT_TRUE(run.verified);
    // The templated per-spec paths ("<dir>/pipe-line-pe<N>.json")
    // exist and re-ingest as valid traces.
    for (int pes : {1, 2}) {
        std::string path =
            dir + "/pipe-line-pe" + std::to_string(pes) + ".json";
        std::vector<trace::Event> events =
            trace::loadChromeTrace(path);
        EXPECT_FALSE(events.empty()) << path;
        trace::Profile profile = trace::analyzeTrace(events);
        EXPECT_EQ(profile.numPes, pes);
        EXPECT_LE(profile.criticalPathCycles, profile.totalCycles);
        std::remove(path.c_str());
    }
}

TEST(Sweep, RunAllRefusesSharedTracePathsUnderParallelJobs)
{
    occam::CompiledProgram program =
        occam::compileOccam(kPipelineSource);
    sim::RunSpec spec;
    spec.program = &program;
    spec.resultArray = "results";
    spec.expected = {kSumOfSquares, 8};
    spec.pes = 2;
    spec.config.traceConfig.enabled = true;
    spec.config.traceConfig.chromeJsonPath =
        testing::TempDir() + "/qm_shared_trace.json";
    std::vector<sim::RunSpec> specs = {spec, spec};
    EXPECT_THROW(sim::runAll(specs, 2), FatalError);
    // Serial execution keeps the historical single-file behavior
    // (later runs overwrite earlier ones).
    std::vector<sim::RunReport> reports = sim::runAll(specs, 1);
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_TRUE(reports[1].verified);
    std::remove(spec.config.traceConfig.chromeJsonPath.c_str());
}

TEST(Qmprof, MalformedBusDestinationsAreIgnoredNotMisattributed)
{
    // Hand-written trace with bus-transfer names an exporter would
    // never emit: a missing destination index, a non-numeric one, and
    // one far past any integer range (which used to be undefined
    // behavior in the std::atoi-based parser). The analyzer must load
    // the file, drop the unattributable destinations, and size the
    // machine from the well-formed events only - never credit PE 0
    // with garbage transfers or crash.
    std::string path = testing::TempDir() + "/qm_malformed_bus.json";
    {
        std::ofstream out(path);
        out << "{\"traceEvents\":[\n"
            << "{\"ph\":\"X\",\"cat\":\"run\",\"name\":\"ctx\","
               "\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":10,"
               "\"args\":{\"ctx\":0}},\n"
            << "{\"ph\":\"X\",\"cat\":\"bus\",\"name\":"
               "\"pe0 -> pe\",\"pid\":0,\"tid\":0,\"ts\":2,"
               "\"dur\":4,\"args\":{\"hops\":1}},\n"
            << "{\"ph\":\"X\",\"cat\":\"bus\",\"name\":"
               "\"pe0 -> peXL\",\"pid\":0,\"tid\":0,\"ts\":3,"
               "\"dur\":4,\"args\":{\"hops\":1}},\n"
            << "{\"ph\":\"X\",\"cat\":\"bus\",\"name\":"
               "\"pe0 -> pe99999999999999999999\",\"pid\":0,"
               "\"tid\":0,\"ts\":4,\"dur\":4,\"args\":{\"hops\":1}},\n"
            << "{\"ph\":\"X\",\"cat\":\"bus\",\"name\":"
               "\"pe0 -> pe-7\",\"pid\":0,\"tid\":0,\"ts\":5,"
               "\"dur\":4,\"args\":{\"hops\":1}},\n"
            << "{\"ph\":\"X\",\"cat\":\"bus\",\"name\":"
               "\"pe0 -> pe3\",\"pid\":0,\"tid\":0,\"ts\":6,"
               "\"dur\":4,\"args\":{\"hops\":1}}\n"
            << "]}\n";
    }
    std::vector<trace::Event> events = trace::loadChromeTrace(path);
    std::remove(path.c_str());
    ASSERT_EQ(events.size(), 6u);
    trace::Profile profile = trace::analyzeTrace(events);
    // Sized by the run event (pid 1) and the one well-formed transfer
    // destination (pe3); the malformed ones contribute nothing.
    EXPECT_EQ(profile.numPes, 4);
    EXPECT_FALSE(profile.render().empty());
}

} // namespace
