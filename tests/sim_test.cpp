/**
 * @file
 * Tests for the sim module: Amdahl models (Figs 6.6/6.7) and the
 * experiment runner used by the Chapter 6 benches.
 */
#include <gtest/gtest.h>

#include "programs/benchmarks.hpp"
#include "sim/amdahl.hpp"
#include "sim/experiment.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace qm;
using namespace qm::sim;

TEST(Amdahl, ClassicLawBasics)
{
    EXPECT_DOUBLE_EQ(amdahlSpeedup(0.93, 1), 1.0);
    // f = 0.93 at 8 PEs: 1 / (0.07 + 0.93/8).
    EXPECT_NEAR(amdahlSpeedup(0.93, 8), 5.369, 0.001);
    // Fully parallel: linear.
    EXPECT_DOUBLE_EQ(amdahlSpeedup(1.0, 8), 8.0);
    // Fully serial: flat.
    EXPECT_DOUBLE_EQ(amdahlSpeedup(0.0, 8), 1.0);
}

TEST(Amdahl, ClassicLawIsMonotone)
{
    double prev = 0.0;
    for (int n = 1; n <= 64; ++n) {
        double s = amdahlSpeedup(0.93, n);
        EXPECT_GT(s, prev);
        EXPECT_LE(s, n);  // never superlinear
        prev = s;
    }
}

TEST(Amdahl, ModifiedLawNormalizesAtOnePe)
{
    // S(1) = 1 by construction for any f, g.
    for (double g : {0.0, 0.1, 0.3, 1.0})
        EXPECT_NEAR(modifiedAmdahlSpeedup(0.63, g, 1), 1.0, 1e-12);
}

TEST(Amdahl, ModifiedLawExceedsClassicWithOverhead)
{
    // The overhead term amortizes, lifting the curve above classic
    // Amdahl at the same f.
    for (int n = 2; n <= 8; ++n)
        EXPECT_GT(modifiedAmdahlSpeedup(0.63, 0.3, n),
                  amdahlSpeedup(0.63, n));
}

TEST(Amdahl, RejectsBadParameters)
{
    EXPECT_THROW(amdahlSpeedup(-0.1, 4), FatalError);
    EXPECT_THROW(amdahlSpeedup(1.1, 4), FatalError);
    EXPECT_THROW(amdahlSpeedup(0.5, 0), FatalError);
    EXPECT_THROW(modifiedAmdahlSpeedup(0.5, -1.0, 4), FatalError);
}

TEST(Experiment, SweepVerifiesAndReportsMonotoneCycles)
{
    programs::Benchmark bench = programs::thesisBenchmarks()[1];  // fft
    SpeedupSeries series =
        runSpeedupSweep(bench.name, bench.source, bench.resultArray,
                        bench.expected, {1, 2, 4, 8});
    ASSERT_EQ(series.runs.size(), 4u);
    for (const RunReport &run : series.runs) {
        EXPECT_TRUE(run.verified) << run.pes << " PEs";
        EXPECT_GT(run.cycles, 0);
        EXPECT_GT(run.utilization, 0.0);
        EXPECT_LE(run.utilization, 1.0);
    }
    // Throughput ratio is 1.0 at the baseline and grows.
    EXPECT_DOUBLE_EQ(series.ratio(0), 1.0);
    EXPECT_GT(series.ratio(3), series.ratio(0));
    // Elapsed cycles shrink with more PEs.
    EXPECT_LT(series.runs[3].cycles, series.runs[0].cycles);
}

TEST(Experiment, RatioPanicsOnOutOfRangeIndex)
{
    SpeedupSeries series;
    EXPECT_THROW(series.ratio(0), PanicError);  // empty series
    RunReport run;
    run.cycles = 100;
    series.runs.push_back(run);
    EXPECT_DOUBLE_EQ(series.ratio(0), 1.0);
    EXPECT_THROW(series.ratio(1), PanicError);  // past the end
    EXPECT_THROW(series.ratio(100), PanicError);
}

TEST(Experiment, RatioPanicsOnZeroCycleRun)
{
    SpeedupSeries series;
    RunReport base;
    base.cycles = 100;
    series.runs.push_back(base);
    RunReport timed_out;  // cycles == 0: run did no work
    series.runs.push_back(timed_out);
    EXPECT_THROW(series.ratio(1), PanicError);
}

TEST(Experiment, ReportCarriesCycleBreakdown)
{
    programs::Benchmark bench = programs::thesisBenchmarks()[1];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    RunReport report =
        runOnce(program, bench.resultArray, bench.expected, 4);
    ASSERT_TRUE(report.verified);
    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.computeCycles + report.kernelCycles +
                  report.blockedCycles,
              report.cycles * report.pes);
    EXPECT_GT(report.computeCycles, 0);
}

TEST(Experiment, VerificationCatchesWrongExpectations)
{
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    std::vector<std::int32_t> wrong = bench.expected;
    wrong[0] += 1;
    occam::CompiledProgram program =
        occam::compileOccam(bench.source);
    RunReport report =
        runOnce(program, bench.resultArray, wrong, 2);
    EXPECT_FALSE(report.verified);
}

TEST(Experiment, PlacementPoliciesAllComplete)
{
    programs::Benchmark bench = programs::thesisBenchmarks()[1];
    occam::CompiledProgram program =
        occam::compileOccam(bench.source);
    for (mp::Placement policy :
         {mp::Placement::LeastLoaded, mp::Placement::RoundRobin,
          mp::Placement::Local}) {
        mp::SystemConfig config;
        config.placement = policy;
        RunReport report = runOnce(program, bench.resultArray,
                                   bench.expected, 4, config);
        EXPECT_TRUE(report.verified);
    }
}

TEST(Experiment, BusPartitionCountAffectsOnlyTiming)
{
    programs::Benchmark bench = programs::thesisBenchmarks()[1];
    occam::CompiledProgram program =
        occam::compileOccam(bench.source);
    mp::Cycle previous = 0;
    for (int partitions : {1, 2, 4, 8}) {
        mp::SystemConfig config;
        config.busPartitions = partitions;
        RunReport report = runOnce(program, bench.resultArray,
                                   bench.expected, 8, config);
        EXPECT_TRUE(report.verified) << partitions << " partitions";
        if (previous)
            EXPECT_NEAR(static_cast<double>(report.cycles),
                        static_cast<double>(previous),
                        0.5 * static_cast<double>(previous));
        previous = report.cycles;
    }
}

/** Every RunReport field, for exact cross-job-count comparison. */
void
expectSameReport(const RunReport &a, const RunReport &b,
                 const std::string &what)
{
    EXPECT_EQ(a.pes, b.pes) << what;
    EXPECT_EQ(a.completed, b.completed) << what;
    EXPECT_EQ(a.verified, b.verified) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.contexts, b.contexts) << what;
    EXPECT_EQ(a.rendezvous, b.rendezvous) << what;
    EXPECT_EQ(a.contextSwitches, b.contextSwitches) << what;
    EXPECT_EQ(a.utilization, b.utilization) << what;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << what;
    EXPECT_EQ(a.kernelCycles, b.kernelCycles) << what;
    EXPECT_EQ(a.blockedCycles, b.blockedCycles) << what;
    EXPECT_EQ(a.busCycles, b.busCycles) << what;
}

TEST(Experiment, ParallelSweepIsDeterministic)
{
    // The acceptance bar for the parallel runner: the matmul sweep
    // must produce the same series - every per-run counter included -
    // under serial (--jobs 1) and parallel (--jobs 4) execution.
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    const std::vector<int> pes = {1, 2, 4};
    SpeedupSeries serial =
        runSpeedupSweep(bench.name, bench.source, bench.resultArray,
                        bench.expected, pes, {}, {}, /*jobs=*/1);
    SpeedupSeries parallel =
        runSpeedupSweep(bench.name, bench.source, bench.resultArray,
                        bench.expected, pes, {}, {}, /*jobs=*/4);
    ASSERT_EQ(serial.runs.size(), parallel.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        expectSameReport(serial.runs[i], parallel.runs[i],
                         "run " + std::to_string(i));
        EXPECT_TRUE(serial.runs[i].verified);
    }
}

TEST(Experiment, RunAllKeepsSpecOrder)
{
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    std::vector<RunSpec> specs;
    for (int pes : {4, 1, 2}) {  // deliberately not sorted
        RunSpec spec;
        spec.program = &program;
        spec.resultArray = bench.resultArray;
        spec.expected = bench.expected;
        spec.pes = pes;
        specs.push_back(std::move(spec));
    }
    std::vector<RunReport> reports = runAll(specs, /*jobs=*/3);
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_EQ(reports[0].pes, 4);
    EXPECT_EQ(reports[1].pes, 1);
    EXPECT_EQ(reports[2].pes, 2);
    for (const RunReport &report : reports)
        EXPECT_TRUE(report.verified);
}

TEST(Experiment, RunAllRejectsSpecWithoutProgram)
{
    std::vector<RunSpec> specs(1);
    EXPECT_THROW(runAll(specs, 1), PanicError);
}

TEST(Experiment, RunAllRefusesParallelTraceFiles)
{
    // Sweep specs share one Chrome trace path; writing it from
    // concurrent runs would race. Serial runs keep working.
    programs::Benchmark bench = programs::thesisBenchmarks()[0];
    occam::CompiledProgram program = occam::compileOccam(bench.source);
    RunSpec spec;
    spec.program = &program;
    spec.resultArray = bench.resultArray;
    spec.expected = bench.expected;
    spec.pes = 2;
    spec.config.traceConfig.enabled = true;
    spec.config.traceConfig.chromeJsonPath = "sweep_trace.json";
    EXPECT_THROW(runAll({spec, spec}, /*jobs=*/2), FatalError);
}

TEST(Experiment, PageSizeSweepPreservesResults)
{
    // Thesis section 5.2: the queue page size trades maximum queue
    // length against memory utilization. Compiled contexts fit in any
    // page >= their footprint; results never change.
    programs::Benchmark bench = programs::thesisBenchmarks()[1];
    for (int words : {64, 128, 256}) {
        occam::CompileOptions options;
        options.pageWords = words;
        occam::CompiledProgram program =
            occam::compileOccam(bench.source, options);
        mp::SystemConfig config;
        config.pageWords = words;
        RunReport report = runOnce(program, bench.resultArray,
                                   bench.expected, 4, config);
        EXPECT_TRUE(report.verified) << words << "-word pages";
    }
}

} // namespace
