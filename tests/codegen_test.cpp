/**
 * @file
 * Code-generation stress tests: dup-chain fan-out, large contexts,
 * queue-offset validation, assembly well-formedness, and the DOT
 * dumper (thesis sections 4.7/5.3).
 */
#include <gtest/gtest.h>

#include "mp/system.hpp"
#include "occam/codegen.hpp"
#include "occam/compiler.hpp"
#include "occam/graph_builder.hpp"
#include "occam/ift.hpp"
#include "occam/parser.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace qm;
using namespace qm::occam;

isa::Word
runAndReadWord(const std::string &source, const std::string &array,
               int index = 0, int pes = 1)
{
    CompiledProgram program = compileOccam(source);
    mp::SystemConfig config;
    config.numPes = pes;
    mp::System system(program.object, config);
    mp::RunResult result = system.run(program.mainLabel);
    EXPECT_TRUE(result.completed);
    return system.memory().readWord(
        program.arrayAddress(array) +
        static_cast<isa::Addr>(index) * 4);
}

TEST(Codegen, WideFanOutUsesDupChains)
{
    // One value consumed 20 times: the fan-out exceeds both dst fields
    // and the 16-register window, forcing dup1/dup2 chains and
    // memory-resident queue traffic.
    // x is fetched from memory so constant folding cannot erase it.
    std::string source =
        "var r[1], seed[1]:\n"
        "var x, acc:\n"
        "seq\n"
        "  seed[0] := 3\n"
        "  x := seed[0]\n"
        "  acc := 0\n";
    source += "  acc := acc";
    for (int i = 0; i < 20; ++i)
        source += " + (x * " + std::to_string(i + 1) + ")";
    source += "\n  r[0] := acc\n";
    // 3 * (1+2+...+20) = 3 * 210 = 630.
    EXPECT_EQ(runAndReadWord(source, "r"), 630u);

    // The generated assembly must actually contain dup instructions.
    CompiledProgram program = compileOccam(source);
    EXPECT_NE(program.assembly.find("dup"), std::string::npos);
}

TEST(Codegen, DeepExpressionStressesQueueOffsets)
{
    // A long dependent chain keeps the queue span narrow; a wide sum
    // keeps many live values. Both must fit the 256-word page.
    std::string source =
        "var r[1]:\n"
        "var a, b, c, d:\n"
        "seq\n"
        "  a := 1\n"
        "  b := 2\n"
        "  c := 3\n"
        "  d := 4\n"
        "  r[0] := ((a + b) * (c + d)) + ((a * c) - (b * d)) + "
        "((a + d) * (b + c)) + ((d - a) * (c - b))\n";
    // (3*7) + (3-8) + (5*5) + (3*1) = 21 - 5 + 25 + 3 = 44.
    EXPECT_EQ(static_cast<isa::SWord>(runAndReadWord(source, "r")), 44);
}

TEST(Codegen, OversizedContextIsRejectedCleanly)
{
    // A single expression with hundreds of simultaneously-live values
    // overflows the operand-queue page; the compiler must refuse with
    // a diagnostic, not emit broken code.
    std::string source =
        "var r[1], seed[1]:\n"
        "var x:\n"
        "seq\n"
        "  seed[0] := 1\n"
        "  x := seed[0]\n"
        "  r[0] := x";
    for (int i = 0; i < 300; ++i)
        source += " + (x * " + std::to_string(i) + ")";
    source += "\n";
    EXPECT_THROW(compileOccam(source), FatalError);
}

TEST(Codegen, FifoSchedulingStillCorrect)
{
    const std::string source =
        "var r[1]:\n"
        "var i, sum:\n"
        "seq\n"
        "  i := 0\n"
        "  sum := 0\n"
        "  while i < 5\n"
        "    seq\n"
        "      sum := sum + i\n"
        "      i := i + 1\n"
        "  r[0] := sum\n";
    CompileOptions options;
    options.priorityScheduling = false;
    CompiledProgram program = compileOccam(source, options);
    mp::System system(program.object, mp::SystemConfig{});
    ASSERT_TRUE(system.run(program.mainLabel).completed);
    EXPECT_EQ(system.memory().readWord(program.arrayAddress("r")),
              10u);
}

TEST(Codegen, AssemblyReassemblesAndDisassembles)
{
    CompiledProgram program = compileOccam(
        "var r[1]:\n"
        "var x:\n"
        "seq\n"
        "  x := 5\n"
        "  if\n"
        "    x > 3\n"
        "      r[0] := 1\n"
        "    x <= 3\n"
        "      r[0] := 2\n");
    // Round trip: the emitted text reassembles to identical words.
    isa::ObjectCode again = isa::assemble(program.assembly);
    EXPECT_EQ(again.words, program.object.words);
    // And the whole object disassembles without tripping the decoder.
    auto lines = isa::disassemble(program.object);
    EXPECT_GT(lines.size(), program.object.words.size() / 2);
}

TEST(Codegen, DotDumpCoversEveryContext)
{
    CompileOptions options;
    options.emitDot = true;
    CompiledProgram program = compileOccam(
        "var r[1]:\n"
        "var i:\n"
        "seq\n"
        "  i := 0\n"
        "  while i < 3\n"
        "    i := i + 1\n"
        "  r[0] := i\n",
        options);
    EXPECT_EQ(static_cast<int>(program.dot.size()),
              program.contextCount);
    for (const auto &[label, dot] : program.dot) {
        EXPECT_NE(dot.find("digraph"), std::string::npos);
        // Control-token arcs render dashed.
        if (label.find("while") != std::string::npos)
            EXPECT_NE(dot.find("->"), std::string::npos);
    }
}

TEST(Codegen, ContextCountMatchesPartitioning)
{
    // main + head/body/term per while + branch/branch/skip per if.
    CompiledProgram program = compileOccam(
        "var r[1]:\n"
        "var i:\n"
        "seq\n"
        "  i := 0\n"
        "  while i < 2\n"
        "    i := i + 1\n"
        "  if\n"
        "    i = 2\n"
        "      r[0] := 1\n"
        "    i <> 2\n"
        "      r[0] := 2\n");
    // 1 main + 3 loop graphs + 3 if graphs (2 branches + skip).
    EXPECT_EQ(program.contextCount, 7);
}

TEST(Codegen, EveryContextEndsWithExitTrap)
{
    CompiledProgram program = compileOccam(
        "var r[1]:\n"
        "par i = [0 for 3]\n"
        "  r[0] := i\n");
    // Count exit traps in the assembly: one per context.
    std::size_t count = 0;
    std::size_t pos = 0;
    while ((pos = program.assembly.find("trap #0,#0", pos)) !=
           std::string::npos) {
        ++count;
        ++pos;
    }
    EXPECT_EQ(static_cast<int>(count), program.contextCount);
}

} // namespace
