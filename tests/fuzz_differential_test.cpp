/**
 * @file
 * Structured random-program differential fuzzing.
 *
 * Generates random (but well-formed, terminating, race-free) OCCAM
 * programs and checks that the abstract context-graph interpreter and
 * the cycle-level multiprocessor compute identical observable memory.
 * Every divergence this has caught was a real compiler or simulator
 * bug, so the corpus is kept deterministic (seeded) and broad.
 *
 * A second corpus re-runs the same programs under seeded fault
 * injection (src/fault): value-preserving faults must never change
 * the observable result - a run either agrees with the abstract
 * interpreter exactly or fails with a structured reason.
 *
 * Set QM_FUZZ_ITERS to widen both corpora (the nightly chaos CI job
 * runs a multiple of the default).
 */
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "fuzz_corpus.hpp"
#include "mp/system.hpp"
#include "occam/codegen.hpp"
#include "occam/graph_interp.hpp"
#include "occam/ift.hpp"
#include "occam/parser.hpp"

namespace {

using namespace qm;
using namespace qm::occam;
using fuzz::ProgramGen;
using fuzz::fuzzIters;

class FuzzDifferentialTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzDifferentialTest, ExecutorsAgree)
{
    ProgramGen gen(0xF00D + static_cast<std::uint64_t>(GetParam()) *
                               0x9E37);
    std::string source = gen.generate();
    SCOPED_TRACE(source);

    Program ast = parse(source);
    SymbolTable table = analyze(ast);
    Ift ift = Ift::build(ast, table);
    ContextProgram contexts = buildContextGraphs(ast, table, ift);

    isa::Addr base = 0;
    for (const auto &[sym, addr] : contexts.dataAddress)
        if (table.symbol(sym).name == "res")
            base = addr;
    ASSERT_NE(base, 0u);

    GraphInterpreter interp(contexts);
    ASSERT_TRUE(interp.run().completed);

    isa::ObjectCode object = isa::assemble(generateAssembly(contexts));
    mp::SystemConfig config;
    config.numPes = 1 + GetParam() % 4;
    mp::System system(object, config);
    ASSERT_TRUE(system.run(contexts.mainLabel).completed);

    for (int i = 0; i < 8; ++i) {
        auto abstract = static_cast<std::int32_t>(
            interp.readWord(base + static_cast<isa::Addr>(i) * 4));
        auto machine = static_cast<std::int32_t>(
            system.memory().readWord(base +
                                     static_cast<isa::Addr>(i) * 4));
        ASSERT_EQ(abstract, machine) << "res[" << i << "]";
    }
}

INSTANTIATE_TEST_SUITE_P(Corpus, FuzzDifferentialTest,
                         ::testing::Range(0, fuzzIters(80)));

class FuzzFaultDifferentialTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzFaultDifferentialTest, FaultyRunAgreesOrFailsCleanly)
{
    ProgramGen gen(0xF00D + static_cast<std::uint64_t>(GetParam()) *
                               0x9E37);
    std::string source = gen.generate();
    SCOPED_TRACE(source);

    Program ast = parse(source);
    SymbolTable table = analyze(ast);
    Ift ift = Ift::build(ast, table);
    ContextProgram contexts = buildContextGraphs(ast, table, ift);

    isa::Addr base = 0;
    for (const auto &[sym, addr] : contexts.dataAddress)
        if (table.symbol(sym).name == "res")
            base = addr;
    ASSERT_NE(base, 0u);

    GraphInterpreter interp(contexts);
    ASSERT_TRUE(interp.run().completed);

    isa::ObjectCode object = isa::assemble(generateAssembly(contexts));
    mp::SystemConfig config;
    config.numPes = 1 + GetParam() % 4;
    // Value-preserving fault mix seeded from the corpus index: the
    // schedule differs per program but stays reproducible.
    fault::FaultPlan plan;
    plan.seed = 0xFA117 + static_cast<std::uint64_t>(GetParam());
    plan.rate = 0.03;
    plan.kinds = fault::kBusDrop | fault::kBusDelay | fault::kPeStall;
    config.faultPlan = plan;
    config.watchdogCycles = 200'000;
    mp::System system(object, config);
    mp::RunResult result = system.run(contexts.mainLabel);

    if (!result.completed) {
        // A lost message beyond the retry bound is an acceptable
        // degraded outcome, but it must be reported, never a hang, a
        // crash, or a silent wrong answer.
        EXPECT_FALSE(result.failureReason.empty());
        return;
    }
    for (int i = 0; i < 8; ++i) {
        auto abstract = static_cast<std::int32_t>(
            interp.readWord(base + static_cast<isa::Addr>(i) * 4));
        auto machine = static_cast<std::int32_t>(
            system.memory().readWord(base +
                                     static_cast<isa::Addr>(i) * 4));
        ASSERT_EQ(abstract, machine) << "res[" << i << "]";
    }
}

INSTANTIATE_TEST_SUITE_P(FaultCorpus, FuzzFaultDifferentialTest,
                         ::testing::Range(0, fuzzIters(40)));

class FuzzRecoveryDifferentialTest
    : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzRecoveryDifferentialTest, RecoveredRunAgreesExactly)
{
    // A third corpus under a much harsher fault mix (loss beyond the
    // link retry bound, duplication, corruption, and a periodic
    // fail-stop), but with the recovery layer on: end-to-end
    // retransmission, seq dedup, checksum heal, span restart, and
    // bounded checkpoint replay. The bar is the same as the fault-free
    // corpus - exact agreement with the abstract interpreter - with a
    // structured failure as the only acceptable degraded outcome.
    ProgramGen gen(0xF00D + static_cast<std::uint64_t>(GetParam()) *
                               0x9E37);
    std::string source = gen.generate();
    SCOPED_TRACE(source);

    Program ast = parse(source);
    SymbolTable table = analyze(ast);
    Ift ift = Ift::build(ast, table);
    ContextProgram contexts = buildContextGraphs(ast, table, ift);

    isa::Addr base = 0;
    for (const auto &[sym, addr] : contexts.dataAddress)
        if (table.symbol(sym).name == "res")
            base = addr;
    ASSERT_NE(base, 0u);

    GraphInterpreter interp(contexts);
    ASSERT_TRUE(interp.run().completed);

    isa::ObjectCode object = isa::assemble(generateAssembly(contexts));
    mp::SystemConfig config;
    config.numPes = 1 + GetParam() % 4;
    fault::FaultPlan plan;
    plan.seed = 0x5EC0 + static_cast<std::uint64_t>(GetParam());
    plan.rate = 0.25;
    plan.kinds =
        fault::kBusDrop | fault::kBusDup | fault::kCacheCorrupt;
    plan.maxRetries = 1;
    if (GetParam() % 3 == 0) {
        plan.kinds |= fault::kPeKill;
        plan.killAt = 200;
        plan.killPe = GetParam() % 4;
    }
    config.faultPlan = plan;
    config.watchdogCycles = 200'000;
    config.recovery.enabled = true;
    config.recovery.checkpointEvery = 300;
    mp::System system(object, config);
    mp::RunResult result = system.run(contexts.mainLabel);
    int replays = 0;
    while (!result.completed && system.replayable() &&
           system.canRestore() &&
           replays < config.recovery.maxReplays) {
        system.restore();
        ++replays;
        result = system.resume();
    }

    if (!result.completed) {
        EXPECT_FALSE(result.failureReason.empty());
        return;
    }
    for (int i = 0; i < 8; ++i) {
        auto abstract = static_cast<std::int32_t>(
            interp.readWord(base + static_cast<isa::Addr>(i) * 4));
        auto machine = static_cast<std::int32_t>(
            system.memory().readWord(base +
                                     static_cast<isa::Addr>(i) * 4));
        ASSERT_EQ(abstract, machine) << "res[" << i << "]";
    }
}

INSTANTIATE_TEST_SUITE_P(RecoveryCorpus, FuzzRecoveryDifferentialTest,
                         ::testing::Range(0, fuzzIters(40)));

} // namespace
