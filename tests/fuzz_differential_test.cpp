/**
 * @file
 * Structured random-program differential fuzzing.
 *
 * Generates random (but well-formed, terminating, race-free) OCCAM
 * programs and checks that the abstract context-graph interpreter and
 * the cycle-level multiprocessor compute identical observable memory.
 * Every divergence this has caught was a real compiler or simulator
 * bug, so the corpus is kept deterministic (seeded) and broad.
 *
 * A second corpus re-runs the same programs under seeded fault
 * injection (src/fault): value-preserving faults must never change
 * the observable result - a run either agrees with the abstract
 * interpreter exactly or fails with a structured reason.
 *
 * Set QM_FUZZ_ITERS to widen both corpora (the nightly chaos CI job
 * runs a multiple of the default).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "fault/fault.hpp"
#include "mp/system.hpp"
#include "occam/codegen.hpp"
#include "occam/graph_interp.hpp"
#include "occam/ift.hpp"
#include "occam/parser.hpp"
#include "support/rng.hpp"

namespace {

using namespace qm;
using namespace qm::occam;

/** Generates one random program per seed. */
class ProgramGen
{
  public:
    explicit ProgramGen(std::uint64_t seed) : rng(seed) {}

    std::string
    generate()
    {
        os << "var res[8], arr[8]:\n";
        os << "var v0, v1, v2, v3:\n";
        os << "seq\n";
        // Deterministic initialization.
        for (int i = 0; i < 4; ++i)
            line(1, "v" + std::to_string(i) + " := " +
                        std::to_string(rng.range(-9, 9)));
        line(1, "seq zz = [0 for 8]");
        line(2, "arr[zz] := zz * " + std::to_string(rng.range(1, 5)));
        // Random statement soup.
        int budget = 6 + static_cast<int>(rng.below(6));
        for (int i = 0; i < budget; ++i)
            statement(1);
        // Observable results.
        for (int i = 0; i < 4; ++i)
            line(1, "res[" + std::to_string(i) + "] := v" +
                        std::to_string(i));
        for (int i = 0; i < 4; ++i)
            line(1, "res[" + std::to_string(4 + i) + "] := arr[" +
                        std::to_string(static_cast<int>(rng.below(8))) +
                        "]");
        return os.str();
    }

  private:
    void
    line(int depth, const std::string &text)
    {
        for (int i = 0; i < depth; ++i)
            os << "  ";
        os << text << "\n";
    }

    std::string
    var()
    {
        return "v" + std::to_string(rng.below(4));
    }

    /** Array index guaranteed in [0, 8). */
    std::string
    index()
    {
        // ((e \ 4) + 4) \ 8 is always in range even for negative e.
        return "(((" + expr(1) + " \\ 4) + 4) \\ 8)";
    }

    std::string
    expr(int depth)
    {
        if (depth >= 3 || rng.below(3) == 0) {
            switch (rng.below(3)) {
              case 0: return std::to_string(rng.range(-9, 9));
              case 1: return var();
              default: return "arr[" +
                              std::to_string(
                                  static_cast<int>(rng.below(8))) +
                              "]";
            }
        }
        static const char *ops[] = {"+", "-", "*"};
        return "(" + expr(depth + 1) + " " +
               ops[rng.below(3)] + " " + expr(depth + 1) + ")";
    }

    std::string
    condition()
    {
        static const char *rel[] = {"<", ">", "=", "<>", "<=", ">="};
        return "(" + expr(2) + ") " + rel[rng.below(6)] + " (" +
               expr(2) + ")";
    }

    void
    statement(int depth)
    {
        if (depth >= 3) {
            line(depth, var() + " := " + expr(1));
            return;
        }
        switch (rng.below(6)) {
          case 0:
            line(depth, var() + " := " + expr(1));
            return;
          case 1:
            line(depth, "arr[" + index() + "] := " + expr(1));
            return;
          case 2: {
            // Bounded loop via replicated seq.
            std::string i = "i" + std::to_string(fresh++);
            line(depth, "seq " + i + " = [0 for " +
                            std::to_string(rng.range(1, 4)) + "]");
            statement(depth + 1);
            return;
          }
          case 3: {
            line(depth, "if");
            line(depth + 1, condition());
            statement(depth + 2);
            line(depth + 1, "true");  // default arm keeps it total
            statement(depth + 2);
            return;
          }
          case 4: {
            // Par with components writing disjoint scalars.
            line(depth, "par");
            line(depth + 1, "v0 := " + disjointExpr(0));
            line(depth + 1, "v1 := " + disjointExpr(1));
            return;
          }
          default: {
            // Replicated par writing disjoint array slots.
            std::string i = "p" + std::to_string(fresh++);
            line(depth, "par " + i + " = [0 for 4]");
            line(depth + 1, "arr[" + i + "] := " + i + " + " +
                                std::to_string(rng.range(-5, 5)));
            return;
          }
        }
    }

    /** Expression not reading the scalar another component writes. */
    std::string
    disjointExpr(int writer)
    {
        // Reads only v2/v3 and arr, which no par component writes.
        std::string base =
            rng.below(2) == 0 ? "v2" : "v3";
        (void)writer;
        return "(" + base + " + " +
               std::to_string(rng.range(-9, 9)) + ")";
    }

    SplitMix64 rng;
    std::ostringstream os;
    int fresh = 0;
};

/**
 * Corpus width: @p fallback by default, overridable with the
 * QM_FUZZ_ITERS environment variable (used by the nightly chaos CI
 * job to soak far wider than a developer checkout).
 */
int
fuzzIters(int fallback)
{
    const char *env = std::getenv("QM_FUZZ_ITERS");
    if (env == nullptr || *env == '\0')
        return fallback;
    int iters = std::atoi(env);
    return iters > 0 ? iters : fallback;
}

class FuzzDifferentialTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzDifferentialTest, ExecutorsAgree)
{
    ProgramGen gen(0xF00D + static_cast<std::uint64_t>(GetParam()) *
                               0x9E37);
    std::string source = gen.generate();
    SCOPED_TRACE(source);

    Program ast = parse(source);
    SymbolTable table = analyze(ast);
    Ift ift = Ift::build(ast, table);
    ContextProgram contexts = buildContextGraphs(ast, table, ift);

    isa::Addr base = 0;
    for (const auto &[sym, addr] : contexts.dataAddress)
        if (table.symbol(sym).name == "res")
            base = addr;
    ASSERT_NE(base, 0u);

    GraphInterpreter interp(contexts);
    ASSERT_TRUE(interp.run().completed);

    isa::ObjectCode object = isa::assemble(generateAssembly(contexts));
    mp::SystemConfig config;
    config.numPes = 1 + GetParam() % 4;
    mp::System system(object, config);
    ASSERT_TRUE(system.run(contexts.mainLabel).completed);

    for (int i = 0; i < 8; ++i) {
        auto abstract = static_cast<std::int32_t>(
            interp.readWord(base + static_cast<isa::Addr>(i) * 4));
        auto machine = static_cast<std::int32_t>(
            system.memory().readWord(base +
                                     static_cast<isa::Addr>(i) * 4));
        ASSERT_EQ(abstract, machine) << "res[" << i << "]";
    }
}

INSTANTIATE_TEST_SUITE_P(Corpus, FuzzDifferentialTest,
                         ::testing::Range(0, fuzzIters(80)));

class FuzzFaultDifferentialTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzFaultDifferentialTest, FaultyRunAgreesOrFailsCleanly)
{
    ProgramGen gen(0xF00D + static_cast<std::uint64_t>(GetParam()) *
                               0x9E37);
    std::string source = gen.generate();
    SCOPED_TRACE(source);

    Program ast = parse(source);
    SymbolTable table = analyze(ast);
    Ift ift = Ift::build(ast, table);
    ContextProgram contexts = buildContextGraphs(ast, table, ift);

    isa::Addr base = 0;
    for (const auto &[sym, addr] : contexts.dataAddress)
        if (table.symbol(sym).name == "res")
            base = addr;
    ASSERT_NE(base, 0u);

    GraphInterpreter interp(contexts);
    ASSERT_TRUE(interp.run().completed);

    isa::ObjectCode object = isa::assemble(generateAssembly(contexts));
    mp::SystemConfig config;
    config.numPes = 1 + GetParam() % 4;
    // Value-preserving fault mix seeded from the corpus index: the
    // schedule differs per program but stays reproducible.
    fault::FaultPlan plan;
    plan.seed = 0xFA117 + static_cast<std::uint64_t>(GetParam());
    plan.rate = 0.03;
    plan.kinds = fault::kBusDrop | fault::kBusDelay | fault::kPeStall;
    config.faultPlan = plan;
    config.watchdogCycles = 200'000;
    mp::System system(object, config);
    mp::RunResult result = system.run(contexts.mainLabel);

    if (!result.completed) {
        // A lost message beyond the retry bound is an acceptable
        // degraded outcome, but it must be reported, never a hang, a
        // crash, or a silent wrong answer.
        EXPECT_FALSE(result.failureReason.empty());
        return;
    }
    for (int i = 0; i < 8; ++i) {
        auto abstract = static_cast<std::int32_t>(
            interp.readWord(base + static_cast<isa::Addr>(i) * 4));
        auto machine = static_cast<std::int32_t>(
            system.memory().readWord(base +
                                     static_cast<isa::Addr>(i) * 4));
        ASSERT_EQ(abstract, machine) << "res[" << i << "]";
    }
}

INSTANTIATE_TEST_SUITE_P(FaultCorpus, FuzzFaultDifferentialTest,
                         ::testing::Range(0, fuzzIters(40)));

class FuzzRecoveryDifferentialTest
    : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzRecoveryDifferentialTest, RecoveredRunAgreesExactly)
{
    // A third corpus under a much harsher fault mix (loss beyond the
    // link retry bound, duplication, corruption, and a periodic
    // fail-stop), but with the recovery layer on: end-to-end
    // retransmission, seq dedup, checksum heal, span restart, and
    // bounded checkpoint replay. The bar is the same as the fault-free
    // corpus - exact agreement with the abstract interpreter - with a
    // structured failure as the only acceptable degraded outcome.
    ProgramGen gen(0xF00D + static_cast<std::uint64_t>(GetParam()) *
                               0x9E37);
    std::string source = gen.generate();
    SCOPED_TRACE(source);

    Program ast = parse(source);
    SymbolTable table = analyze(ast);
    Ift ift = Ift::build(ast, table);
    ContextProgram contexts = buildContextGraphs(ast, table, ift);

    isa::Addr base = 0;
    for (const auto &[sym, addr] : contexts.dataAddress)
        if (table.symbol(sym).name == "res")
            base = addr;
    ASSERT_NE(base, 0u);

    GraphInterpreter interp(contexts);
    ASSERT_TRUE(interp.run().completed);

    isa::ObjectCode object = isa::assemble(generateAssembly(contexts));
    mp::SystemConfig config;
    config.numPes = 1 + GetParam() % 4;
    fault::FaultPlan plan;
    plan.seed = 0x5EC0 + static_cast<std::uint64_t>(GetParam());
    plan.rate = 0.25;
    plan.kinds =
        fault::kBusDrop | fault::kBusDup | fault::kCacheCorrupt;
    plan.maxRetries = 1;
    if (GetParam() % 3 == 0) {
        plan.kinds |= fault::kPeKill;
        plan.killAt = 200;
        plan.killPe = GetParam() % 4;
    }
    config.faultPlan = plan;
    config.watchdogCycles = 200'000;
    config.recovery.enabled = true;
    config.recovery.checkpointEvery = 300;
    mp::System system(object, config);
    mp::RunResult result = system.run(contexts.mainLabel);
    int replays = 0;
    while (!result.completed && system.replayable() &&
           system.canRestore() &&
           replays < config.recovery.maxReplays) {
        system.restore();
        ++replays;
        result = system.resume();
    }

    if (!result.completed) {
        EXPECT_FALSE(result.failureReason.empty());
        return;
    }
    for (int i = 0; i < 8; ++i) {
        auto abstract = static_cast<std::int32_t>(
            interp.readWord(base + static_cast<isa::Addr>(i) * 4));
        auto machine = static_cast<std::int32_t>(
            system.memory().readWord(base +
                                     static_cast<isa::Addr>(i) * 4));
        ASSERT_EQ(abstract, machine) << "res[" << i << "]";
    }
}

INSTANTIATE_TEST_SUITE_P(RecoveryCorpus, FuzzRecoveryDifferentialTest,
                         ::testing::Range(0, fuzzIters(40)));

} // namespace
