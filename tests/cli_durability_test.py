#!/usr/bin/env python3
"""CLI durability smoke test, run by ctest.

Asserts:
  * occamc's structured exit codes, one per failure class
    (usage 2, compile 3, watchdog/deadline 4, structured run
    failure 5, fatal 6, interrupted 128+signo);
  * occamc --checkpoint-file / --resume byte-identity on stdout,
    and the corrupt-checkpoint cold-start fallback;
  * bench_compare.py's exit-2 diagnostics on missing/unreadable/
    malformed report files (no tracebacks).

Usage: cli_durability_test.py OCCAMC BENCH_COMPARE SOURCE_DIR
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

failures = []


def check(name, ok, detail=""):
    tag = "ok" if ok else "FAIL"
    print(f"{tag}: {name}" + (f" ({detail})" if detail and not ok else ""))
    if not ok:
        failures.append(name)


def run(cmd, **kw):
    return subprocess.run(cmd, capture_output=True, text=True, **kw)


def main():
    occamc, bench_compare, srcdir = sys.argv[1:4]
    pipeline = os.path.join(srcdir, "examples", "pipeline.occ")
    tmp = tempfile.mkdtemp(prefix="cli_durability_")

    def path(name):
        return os.path.join(tmp, name)

    # --- occamc exit-code classes -------------------------------------
    p = run([occamc, "--definitely-not-a-flag"])
    check("usage error exits 2", p.returncode == 2, f"rc={p.returncode}")

    p = run([occamc, path("missing.occ")])
    check("unreadable input exits 2", p.returncode == 2,
          f"rc={p.returncode}")

    bad = path("bad.occ")
    with open(bad, "w") as f:
        f.write("seq !!! not occam\n")
    p = run([occamc, bad])
    check("compile error exits 3", p.returncode == 3,
          f"rc={p.returncode}")

    slow = path("slow.occ")
    with open(slow, "w") as f:
        f.write("var results[1]:\nvar total:\nseq\n  total := 0\n"
                "  seq i = [1 for 500000]\n    total := total + i\n"
                "  results[0] := total\n")
    p = run([occamc, "--run", "--deadline-ms", "1", slow])
    check("host deadline exits 4 (watchdog class)", p.returncode == 4,
          f"rc={p.returncode}")
    check("deadline row is structured",
          "failure: deadline:" in p.stdout, p.stdout[-200:])

    p = run([occamc, "--run", "--pes", "4", "--faults",
             "seed=7,rate=0.5,kinds=corrupt", pipeline])
    check("structured run failure exits 5", p.returncode == 5,
          f"rc={p.returncode}")

    dead = path("dead.occ")
    with open(dead, "w") as f:
        f.write("chan a:\nvar x:\nseq\n  a ? x\n")
    p = run([occamc, "--run", dead])
    check("kernel panic exits 6", p.returncode == 6,
          f"rc={p.returncode}")

    proc = subprocess.Popen([occamc, "--run", slow],
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    time.sleep(0.3)
    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=30)
    check("SIGTERM exits 143 after wind-down",
          rc == 128 + signal.SIGTERM, f"rc={rc}")

    # --- checkpoint / resume ------------------------------------------
    ckpt = path("pipeline.qmc")
    base_cmd = [occamc, "--run", "--pes", "4", "--recover",
                "--checkpoint-every", "200", "--stats"]
    p_full = run(base_cmd + ["--checkpoint-file", ckpt, pipeline])
    check("checkpointed run succeeds", p_full.returncode == 0,
          f"rc={p_full.returncode}")
    check("checkpoint file written", os.path.exists(ckpt))

    p_res = run(base_cmd + ["--resume", ckpt, pipeline])
    check("resumed run succeeds", p_res.returncode == 0,
          f"rc={p_res.returncode}")
    check("resumed stdout is byte-identical",
          p_res.stdout == p_full.stdout)
    check("resume notice goes to stderr only",
          "resumed from" in p_res.stderr)

    with open(ckpt, "rb") as f:
        image = bytearray(f.read())
    image[len(image) // 2] ^= 0x40
    corrupt = path("corrupt.qmc")
    with open(corrupt, "wb") as f:
        f.write(image)
    p_bad = run(base_cmd + ["--resume", corrupt, pipeline])
    check("corrupt checkpoint falls back to cold start",
          p_bad.returncode == 0 and p_bad.stdout == p_full.stdout,
          f"rc={p_bad.returncode}")
    check("corrupt checkpoint diagnosed on stderr",
          "cannot resume" in p_bad.stderr, p_bad.stderr[:200])

    # --- bench_compare robustness -------------------------------------
    good = path("BENCH_good.json")
    with open(good, "w") as f:
        json.dump({"bench": "t", "series": [
            {"name": "s", "runs": [
                {"pes": 1, "cycles": 100, "verified": True}]}]}, f)

    p = run([sys.executable, bench_compare, good, good])
    check("bench_compare accepts a valid report", p.returncode == 0,
          f"rc={p.returncode}")

    p = run([sys.executable, bench_compare, path("nope.json"), good])
    check("missing report exits 2", p.returncode == 2,
          f"rc={p.returncode}")
    check("missing report: one-line diagnostic, no traceback",
          "Traceback" not in p.stderr and
          len(p.stderr.strip().splitlines()) == 1, p.stderr[:200])

    malformed = path("BENCH_malformed.json")
    with open(malformed, "w") as f:
        f.write("{not json")
    p = run([sys.executable, bench_compare, good, malformed])
    check("malformed report exits 2", p.returncode == 2,
          f"rc={p.returncode}")
    check("malformed report: no traceback", "Traceback" not in p.stderr)

    wrongshape = path("BENCH_list.json")
    with open(wrongshape, "w") as f:
        f.write("[1, 2, 3]")
    p = run([sys.executable, bench_compare, wrongshape, good])
    check("non-object report exits 2", p.returncode == 2,
          f"rc={p.returncode}")

    if failures:
        print(f"{len(failures)} check(s) failed")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
