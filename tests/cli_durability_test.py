#!/usr/bin/env python3
"""CLI durability smoke test, run by ctest.

Asserts:
  * occamc's structured exit codes, one per failure class
    (usage 2, compile 3, watchdog/deadline 4, structured run
    failure 5, fatal 6, interrupted 128+signo);
  * occamc --checkpoint-file / --resume byte-identity on stdout,
    and the corrupt-checkpoint cold-start fallback;
  * bench_compare.py's exit-2 diagnostics on missing/unreadable/
    malformed report files (no tracebacks);
  * the flight recorder: every failure class leaves a parseable
    qm.flight.v1 black box, clean runs leave none, --flight off
    suppresses it;
  * --metrics byte-identity between a checkpointed run and its resume;
  * --telemetry NDJSON byte-identity across --threads counts;
  * qmprof diff / qmprof flight exit codes and verdicts.

Usage: cli_durability_test.py OCCAMC BENCH_COMPARE SOURCE_DIR QMPROF
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

failures = []


def check(name, ok, detail=""):
    tag = "ok" if ok else "FAIL"
    print(f"{tag}: {name}" + (f" ({detail})" if detail and not ok else ""))
    if not ok:
        failures.append(name)


def run(cmd, **kw):
    return subprocess.run(cmd, capture_output=True, text=True, **kw)


def main():
    # Absolute paths: several runs set cwd to scratch directories.
    occamc, bench_compare, srcdir, qmprof = map(os.path.abspath,
                                                sys.argv[1:5])
    pipeline = os.path.join(srcdir, "examples", "pipeline.occ")
    tmp = tempfile.mkdtemp(prefix="cli_durability_")

    def path(name):
        return os.path.join(tmp, name)

    # --- occamc exit-code classes -------------------------------------
    p = run([occamc, "--definitely-not-a-flag"])
    check("usage error exits 2", p.returncode == 2, f"rc={p.returncode}")

    p = run([occamc, path("missing.occ")])
    check("unreadable input exits 2", p.returncode == 2,
          f"rc={p.returncode}")

    bad = path("bad.occ")
    with open(bad, "w") as f:
        f.write("seq !!! not occam\n")
    p = run([occamc, bad])
    check("compile error exits 3", p.returncode == 3,
          f"rc={p.returncode}")

    slow = path("slow.occ")
    with open(slow, "w") as f:
        f.write("var results[1]:\nvar total:\nseq\n  total := 0\n"
                "  seq i = [1 for 500000]\n    total := total + i\n"
                "  results[0] := total\n")
    # Failure-class runs get cwd=tmp: with no explicit sibling file the
    # flight recorder's default dump path is ./qm.flight.json.
    p = run([occamc, "--run", "--deadline-ms", "1", slow], cwd=tmp)
    check("host deadline exits 4 (watchdog class)", p.returncode == 4,
          f"rc={p.returncode}")
    check("deadline row is structured",
          "failure: deadline:" in p.stdout, p.stdout[-200:])

    def read_flight(flight_path):
        try:
            with open(flight_path) as f:
                return json.load(f)
        except (OSError, ValueError):
            return None

    flight = read_flight(path("qm.flight.json"))
    check("deadline abort leaves a parseable flight dump",
          flight is not None and flight.get("schema") == "qm.flight.v1"
          and "deadline" in flight.get("reason", ""))
    check("flight dump notice goes to stderr",
          "flight recorder dump" in p.stderr, p.stderr[:200])
    os.remove(path("qm.flight.json"))

    p = run([occamc, "--run", "--pes", "4", "--faults",
             "seed=7,rate=0.5,kinds=corrupt", pipeline], cwd=tmp)
    check("structured run failure exits 5", p.returncode == 5,
          f"rc={p.returncode}")
    flight = read_flight(path("qm.flight.json"))
    check("structured failure leaves a parseable flight dump",
          flight is not None and flight.get("schema") == "qm.flight.v1"
          and any(r.get("name") == "fault" and r.get("recorded", 0) > 0
                  for r in flight.get("rings", [])))
    fault_flight = path("fault.flight.json")
    os.rename(path("qm.flight.json"), fault_flight)

    dead = path("dead.occ")
    with open(dead, "w") as f:
        f.write("chan a:\nvar x:\nseq\n  a ? x\n")
    p = run([occamc, "--run", dead], cwd=tmp)
    check("kernel panic exits 6", p.returncode == 6,
          f"rc={p.returncode}")
    flight = read_flight(path("qm.flight.json"))
    check("fatal fault leaves a parseable flight dump",
          flight is not None and flight.get("schema") == "qm.flight.v1")
    os.remove(path("qm.flight.json"))

    p = run([occamc, "--run", "--flight", "off", dead], cwd=tmp)
    check("--flight off still exits 6", p.returncode == 6,
          f"rc={p.returncode}")
    check("--flight off suppresses the dump",
          not os.path.exists(path("qm.flight.json")))

    proc = subprocess.Popen([occamc, "--run", slow],
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL, cwd=tmp)
    time.sleep(0.3)
    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=30)
    check("SIGTERM exits 143 after wind-down",
          rc == 128 + signal.SIGTERM, f"rc={rc}")
    flight = read_flight(path("qm.flight.json"))
    check("SIGTERM leaves a parseable flight dump",
          flight is not None and flight.get("schema") == "qm.flight.v1")
    os.remove(path("qm.flight.json"))

    clean_dir = path("clean")
    os.mkdir(clean_dir)
    p = run([occamc, "--run", slow], cwd=clean_dir)
    check("clean run succeeds", p.returncode == 0,
          f"rc={p.returncode}")
    check("clean run leaves no flight dump",
          os.listdir(clean_dir) == [], repr(os.listdir(clean_dir)))

    # --- checkpoint / resume ------------------------------------------
    ckpt = path("pipeline.qmc")
    base_cmd = [occamc, "--run", "--pes", "4", "--recover",
                "--checkpoint-every", "200", "--stats"]
    p_full = run(base_cmd + ["--checkpoint-file", ckpt, pipeline])
    check("checkpointed run succeeds", p_full.returncode == 0,
          f"rc={p_full.returncode}")
    check("checkpoint file written", os.path.exists(ckpt))

    p_res = run(base_cmd + ["--resume", ckpt, pipeline])
    check("resumed run succeeds", p_res.returncode == 0,
          f"rc={p_res.returncode}")
    check("resumed stdout is byte-identical",
          p_res.stdout == p_full.stdout)
    check("resume notice goes to stderr only",
          "resumed from" in p_res.stderr)

    with open(ckpt, "rb") as f:
        image = bytearray(f.read())
    image[len(image) // 2] ^= 0x40
    corrupt = path("corrupt.qmc")
    with open(corrupt, "wb") as f:
        f.write(image)
    p_bad = run(base_cmd + ["--resume", corrupt, pipeline])
    check("corrupt checkpoint falls back to cold start",
          p_bad.returncode == 0 and p_bad.stdout == p_full.stdout,
          f"rc={p_bad.returncode}")
    check("corrupt checkpoint diagnosed on stderr",
          "cannot resume" in p_bad.stderr, p_bad.stderr[:200])

    # Durable-checkpoint runs persist the black box at every boundary
    # so a kill -9 still leaves evidence on disk.
    flight = read_flight(ckpt + ".flight.json")
    check("checkpoint boundary persists a flight dump",
          flight is not None and flight.get("schema") == "qm.flight.v1"
          and flight.get("reason") == "checkpoint")

    # --- metrics byte-identity across resume --------------------------
    metrics = path("metrics.json")
    ckpt2 = path("metrics.qmc")
    p1 = run(base_cmd + ["--checkpoint-file", ckpt2, "--metrics",
                         metrics, pipeline])
    check("metrics run succeeds", p1.returncode == 0,
          f"rc={p1.returncode}")
    with open(metrics, "rb") as f:
        metrics_full = f.read()
    p2 = run(base_cmd + ["--resume", ckpt2, "--metrics", metrics,
                         pipeline])
    check("metrics resume succeeds", p2.returncode == 0,
          f"rc={p2.returncode}")
    with open(metrics, "rb") as f:
        metrics_resumed = f.read()
    check("resumed --metrics document is byte-identical",
          metrics_full == metrics_resumed)

    # --- telemetry stream ---------------------------------------------
    def telemetry_bytes(threads, name):
        out = path(name)
        p = run([occamc, "--run", "--pes", "4", "--threads", threads,
                 "--telemetry", out, "--telemetry-every", "100",
                 pipeline])
        check(f"telemetry run (threads={threads}) succeeds",
              p.returncode == 0, f"rc={p.returncode}")
        with open(out, "rb") as f:
            return f.read()

    t1 = telemetry_bytes("1", "t1.ndjson")
    t4 = telemetry_bytes("4", "t4.ndjson")
    check("telemetry stream is non-empty", len(t1) > 0)
    check("telemetry is byte-identical across --threads", t1 == t4)
    lines = t1.decode().splitlines()
    parsed = [json.loads(line) for line in lines]
    check("telemetry lines are qm.telemetry.v1 and cycle-monotone",
          all(s.get("schema") == "qm.telemetry.v1" for s in parsed)
          and all(a["cycle"] < b["cycle"]
                  for a, b in zip(parsed, parsed[1:])))

    # --- bench_compare robustness -------------------------------------
    good = path("BENCH_good.json")
    with open(good, "w") as f:
        json.dump({"bench": "t", "series": [
            {"name": "s", "runs": [
                {"pes": 1, "cycles": 100, "verified": True}]}]}, f)

    p = run([sys.executable, bench_compare, good, good])
    check("bench_compare accepts a valid report", p.returncode == 0,
          f"rc={p.returncode}")

    p = run([sys.executable, bench_compare, path("nope.json"), good])
    check("missing report exits 2", p.returncode == 2,
          f"rc={p.returncode}")
    check("missing report: one-line diagnostic, no traceback",
          "Traceback" not in p.stderr and
          len(p.stderr.strip().splitlines()) == 1, p.stderr[:200])

    malformed = path("BENCH_malformed.json")
    with open(malformed, "w") as f:
        f.write("{not json")
    p = run([sys.executable, bench_compare, good, malformed])
    check("malformed report exits 2", p.returncode == 2,
          f"rc={p.returncode}")
    check("malformed report: no traceback", "Traceback" not in p.stderr)

    wrongshape = path("BENCH_list.json")
    with open(wrongshape, "w") as f:
        f.write("[1, 2, 3]")
    p = run([sys.executable, bench_compare, wrongshape, good])
    check("non-object report exits 2", p.returncode == 2,
          f"rc={p.returncode}")

    # --- qmprof diff / flight -----------------------------------------
    p = run([qmprof, "diff", good, good])
    check("qmprof diff: identical reports exit 0", p.returncode == 0,
          f"rc={p.returncode}")
    check("qmprof diff: verdict line present",
          "within tolerance" in p.stdout, p.stdout[:200])

    regressed = path("BENCH_regressed.json")
    with open(regressed, "w") as f:
        json.dump({"bench": "t", "series": [
            {"name": "s", "runs": [
                {"pes": 1, "cycles": 200, "verified": True}]}]}, f)
    p = run([qmprof, "diff", good, regressed])
    check("qmprof diff: regression exits 1", p.returncode == 1,
          f"rc={p.returncode}")
    check("qmprof diff: regression names the cell",
          "FAIL" in p.stdout and "s @ 1 PEs" in p.stdout,
          p.stdout[:200])

    p = run([qmprof, "diff", path("nope.json"), good])
    check("qmprof diff: missing input exits 2", p.returncode == 2,
          f"rc={p.returncode}")

    p = run([qmprof, "flight", fault_flight])
    check("qmprof flight: post-mortem exits 0", p.returncode == 0,
          f"rc={p.returncode}")
    check("qmprof flight: probable cause reported",
          "probable cause" in p.stdout, p.stdout[:200])

    p = run([qmprof, "flight", good])
    check("qmprof flight: non-flight JSON exits 2", p.returncode == 2,
          f"rc={p.returncode}")

    if failures:
        print(f"{len(failures)} check(s) failed")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
