/**
 * @file
 * Tests for the OCCAM front end: lexer, parser, semantic analysis, and
 * the Intermediate Form Table analyses (thesis sections 4.3-4.4).
 */
#include <gtest/gtest.h>

#include "occam/ift.hpp"
#include "occam/lexer.hpp"
#include "occam/parser.hpp"
#include "occam/symbols.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace qm;
using namespace qm::occam;

TEST(Lexer, TokenizesBasicLine)
{
    auto toks = lex("x := a + 41\n");
    ASSERT_GE(toks.size(), 6u);
    EXPECT_EQ(toks[0].kind, Tok::Name);
    EXPECT_EQ(toks[1].kind, Tok::Assign);
    EXPECT_EQ(toks[2].kind, Tok::Name);
    EXPECT_EQ(toks[3].kind, Tok::Plus);
    EXPECT_EQ(toks[4].kind, Tok::Number);
    EXPECT_EQ(toks[4].value, 41);
    EXPECT_EQ(toks[5].kind, Tok::Newline);
}

TEST(Lexer, IndentationProducesIndentDedent)
{
    auto toks = lex(
        "seq\n"
        "  skip\n"
        "  skip\n");
    std::vector<Tok> kinds;
    for (const auto &t : toks)
        kinds.push_back(t.kind);
    std::vector<Tok> expected = {
        Tok::KwSeq, Tok::Newline, Tok::Indent, Tok::KwSkip,
        Tok::Newline, Tok::KwSkip, Tok::Newline, Tok::Dedent,
        Tok::EndOfFile};
    EXPECT_EQ(kinds, expected);
}

TEST(Lexer, CommentsAndBlankLinesIgnored)
{
    auto toks = lex(
        "-- header comment\n"
        "\n"
        "skip -- trailing\n");
    EXPECT_EQ(toks[0].kind, Tok::KwSkip);
    EXPECT_EQ(toks[1].kind, Tok::Newline);
}

TEST(Lexer, TwoCharOperators)
{
    auto toks = lex("a <> b <= c >= d := e\n");
    EXPECT_EQ(toks[1].kind, Tok::Neq);
    EXPECT_EQ(toks[3].kind, Tok::Le);
    EXPECT_EQ(toks[5].kind, Tok::Ge);
    EXPECT_EQ(toks[7].kind, Tok::Assign);
}

TEST(Lexer, TracksColumns)
{
    auto toks = lex("x := a + 41\n");
    ASSERT_GE(toks.size(), 6u);
    EXPECT_EQ(toks[0].col, 1);   // x
    EXPECT_EQ(toks[1].col, 3);   // :=
    EXPECT_EQ(toks[2].col, 6);   // a
    EXPECT_EQ(toks[3].col, 8);   // +
    EXPECT_EQ(toks[4].col, 10);  // 41
    for (const auto &t : toks)
        EXPECT_EQ(t.line, t.kind == Tok::EndOfFile ? 2 : 1);
}

TEST(Lexer, IndentedTokensStartPastTheIndentation)
{
    auto toks = lex(
        "seq\n"
        "  left := 1\n");
    // seq(1:1) newline indent left(2:3) := 1 newline dedent eof
    ASSERT_GE(toks.size(), 4u);
    EXPECT_EQ(toks[0].col, 1);
    EXPECT_EQ(toks[3].kind, Tok::Name);
    EXPECT_EQ(toks[3].line, 2);
    EXPECT_EQ(toks[3].col, 3);
}

/** The FatalError message produced by @p fn, or "" if it didn't throw. */
template <typename Fn>
std::string
diagnosticOf(Fn fn)
{
    try {
        fn();
    } catch (const FatalError &e) {
        return e.what();
    }
    return "";
}

TEST(Lexer, InconsistentIndentIsFatal)
{
    EXPECT_THROW(lex("seq\n    skip\n  skip\n"), FatalError);
    std::string msg =
        diagnosticOf([] { lex("seq\n    skip\n  skip\n"); });
    EXPECT_NE(msg.find("line 3:3"), std::string::npos) << msg;
}

TEST(Lexer, UnexpectedCharacterReportsLineAndColumn)
{
    std::string msg = diagnosticOf([] { lex("x := a ; b\n"); });
    EXPECT_NE(msg.find("line 1:8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unexpected character ';'"), std::string::npos)
        << msg;
}

TEST(Parser, AssignAndExpressions)
{
    Program p = parse("x := (a + b) * 3\n");
    ASSERT_EQ(p.main->kind, Process::Kind::Assign);
    EXPECT_EQ(p.main->value->op, "*");
}

TEST(Parser, SeqParStructure)
{
    Program p = parse(
        "seq\n"
        "  x := 1\n"
        "  par\n"
        "    y := 2\n"
        "    z := 3\n");
    ASSERT_EQ(p.main->kind, Process::Kind::Seq);
    ASSERT_EQ(p.main->children.size(), 2u);
    const Process &par = *p.main->children[1];
    EXPECT_EQ(par.kind, Process::Kind::Par);
    EXPECT_EQ(par.children.size(), 2u);
}

TEST(Parser, IfGuards)
{
    Program p = parse(
        "if\n"
        "  x > 0\n"
        "    y := 1\n"
        "  x <= 0\n"
        "    y := 2\n");
    ASSERT_EQ(p.main->kind, Process::Kind::If);
    ASSERT_EQ(p.main->branches.size(), 2u);
    EXPECT_EQ(p.main->branches[0].condition->op, "gt");
}

TEST(Parser, WhileLoop)
{
    Program p = parse(
        "while i < 10\n"
        "  i := i + 1\n");
    ASSERT_EQ(p.main->kind, Process::Kind::While);
    EXPECT_EQ(p.main->condition->op, "lt");
}

TEST(Parser, ChannelOps)
{
    Program p = parse(
        "seq\n"
        "  c ! x + 1\n"
        "  c ? y\n"
        "  c ? v[2]\n");
    EXPECT_EQ(p.main->children[0]->kind, Process::Kind::Output);
    EXPECT_EQ(p.main->children[1]->kind, Process::Kind::Input);
    EXPECT_EQ(p.main->children[2]->target->kind, Expr::Kind::ArrayRef);
}

TEST(Parser, Declarations)
{
    Program p = parse(
        "var x, y:\n"
        "var v[100]:\n"
        "chan c:\n"
        "def n = 8:\n"
        "skip\n");
    ASSERT_EQ(p.decls.size(), 5u);
    EXPECT_EQ(p.decls[0].kind, Declaration::Kind::Scalar);
    EXPECT_EQ(p.decls[2].kind, Declaration::Kind::Array);
    EXPECT_EQ(p.decls[3].kind, Declaration::Kind::Channel);
    EXPECT_EQ(p.decls[4].kind, Declaration::Kind::Constant);
}

TEST(Parser, ProcedureDeclaration)
{
    Program p = parse(
        "proc add (value a, value b, var r) =\n"
        "  r := a + b\n"
        ":\n"
        "add (1, 2, x)\n");
    ASSERT_EQ(p.decls.size(), 1u);
    const Declaration &d = p.decls[0];
    EXPECT_EQ(d.kind, Declaration::Kind::Procedure);
    ASSERT_EQ(d.params.size(), 3u);
    EXPECT_TRUE(d.params[0].byValue);
    EXPECT_FALSE(d.params[2].byValue);
    EXPECT_EQ(p.main->kind, Process::Kind::Call);
    EXPECT_EQ(p.main->args.size(), 3u);
}

TEST(Parser, ReplicatedSeqDesugarsToWhile)
{
    Program p = parse(
        "seq i = [1 for 10]\n"
        "  sum := sum + i\n");
    // Desugars to: i := 1; $end := 11; while i < $end ...
    ASSERT_EQ(p.main->kind, Process::Kind::Seq);
    ASSERT_EQ(p.main->children.size(), 3u);
    EXPECT_EQ(p.main->children[2]->kind, Process::Kind::While);
    EXPECT_EQ(p.main->decls.size(), 2u);  // i and $rep0
}

TEST(Parser, ReplicatedParKeepsReplicator)
{
    Program p = parse(
        "par i = [0 for 4]\n"
        "  v[i] := i\n");
    ASSERT_EQ(p.main->kind, Process::Kind::Par);
    ASSERT_TRUE(p.main->repl.has_value());
    EXPECT_EQ(p.main->repl->var, "i");
}

TEST(Parser, WaitForms)
{
    Program a = parse("wait now after t + 1\n");
    EXPECT_EQ(a.main->kind, Process::Kind::Wait);
    Program b = parse("wait 100\n");
    EXPECT_EQ(b.main->kind, Process::Kind::Wait);
}

TEST(Parser, Errors)
{
    EXPECT_THROW(parse("x := \n"), FatalError);
    EXPECT_THROW(parse("if x\n"), FatalError);
    EXPECT_THROW(parse("seq extra\n  skip\n"), FatalError);
}

TEST(Parser, ErrorsCarryLineAndColumn)
{
    // The dangling ':=' fails at the newline (just past the rhs).
    std::string msg = diagnosticOf([] { parse("x := \n"); });
    EXPECT_NE(msg.find("line 1:6"), std::string::npos) << msg;
    // The stray name after 'seq' is the offending token.
    msg = diagnosticOf([] { parse("seq extra\n  skip\n"); });
    EXPECT_NE(msg.find("line 1:5"), std::string::npos) << msg;
    // A second-line error points into that line, not the file start.
    msg = diagnosticOf([] { parse("seq\n  x + 1\n"); });
    EXPECT_NE(msg.find("line 2:3"), std::string::npos) << msg;
}

// ----- Sema ---------------------------------------------------------------

SymbolTable
check(const std::string &src, Program &out)
{
    out = parse(src);
    return analyze(out);
}

TEST(Sema, ResolvesAcrossScopes)
{
    Program p;
    SymbolTable t = check(
        "var x:\n"
        "seq\n"
        "  var y:\n"
        "  seq\n"
        "    y := x\n",
        p);
    EXPECT_GE(t.size(), 2);
}

TEST(Sema, UndeclaredNameIsFatal)
{
    Program p;
    EXPECT_THROW(check("x := 1\n", p), FatalError);
}

TEST(Sema, KindChecks)
{
    Program p;
    EXPECT_THROW(check("chan c:\nc := 1\n", p), FatalError);
    EXPECT_THROW(check("var v[4]:\nv := 1\n", p), FatalError);
    EXPECT_THROW(check("var x:\nx ? y\n", p), FatalError);
    EXPECT_THROW(check("def n = 2:\nn := 1\n", p), FatalError);
}

TEST(Sema, ConstantFolding)
{
    Program p;
    SymbolTable t = check(
        "def n = 4, m = n * 2 + 1:\n"
        "var v[m]:\n"
        "skip\n",
        p);
    // v has size 9.
    bool found = false;
    for (int i = 0; i < t.size(); ++i) {
        if (t.symbol(i).name == "v") {
            EXPECT_EQ(t.symbol(i).arraySize, 9);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Sema, ProcArityChecked)
{
    Program p;
    EXPECT_THROW(check(
        "proc f (value a) =\n"
        "  skip\n"
        "f (1, 2)\n", p), FatalError);
}

TEST(Sema, ProcBodySeesOnlyParams)
{
    Program p;
    EXPECT_THROW(check(
        "var g:\n"
        "proc f (value a) =\n"
        "  g := a\n"
        "skip\n", p), FatalError);
}

TEST(Sema, DuplicateNamesInScopeFatal)
{
    Program p;
    EXPECT_THROW(check("var x, x:\nskip\n", p), FatalError);
}

// ----- IFT ------------------------------------------------------------------

struct Front
{
    Program program;
    SymbolTable table;
    Ift ift;

    explicit Front(const std::string &src, bool live = true)
        : program(parse(src)), table(analyze(program)),
          ift(Ift::build(program, table, live))
    {
    }

    int
    sym(const std::string &name) const
    {
        for (int i = 0; i < table.size(); ++i)
            if (table.symbol(i).name == name)
                return i;
        return -1;
    }
};

TEST(Ift, Table43SeqExample)
{
    // The Table 4.3 fragment: seq / x := x + 1 / y := x.
    Front f(
        "var x, y:\n"
        "seq\n"
        "  x := x + 1\n"
        "  y := x\n");
    const IftEntry &seq = f.ift.entry(f.ift.mainEntry());
    EXPECT_EQ(seq.type, IftEntry::Type::Seq);
    // I(seq) = {x} (x used before defined); O = {x, y} minus locals...
    // x and y are declared at program scope (not in the seq), so they
    // appear in the sets.
    ASSERT_NE(seq.input(f.sym("x")), nullptr);
    EXPECT_EQ(seq.input(f.sym("y")), nullptr);
    EXPECT_NE(seq.output(f.sym("x")), nullptr);
    EXPECT_NE(seq.output(f.sym("y")), nullptr);
}

TEST(Ift, UseDefLinksSequentialChain)
{
    Front f(
        "var x, y:\n"
        "seq\n"
        "  x := 1\n"
        "  y := x\n");
    int seq = f.ift.mainEntry();
    int first = f.ift.entry(seq).chains[0][0];
    int second = f.ift.entry(seq).chains[0][1];
    // The definition of x in entry 'first' is used by 'second'.
    const IftValue *def = f.ift.entry(first).output(f.sym("x"));
    ASSERT_NE(def, nullptr);
    EXPECT_TRUE(def->uses.count(second));
    const IftValue *use = f.ift.entry(second).input(f.sym("x"));
    ASSERT_NE(use, nullptr);
    EXPECT_TRUE(use->defs.count(first));
}

TEST(Ift, LivenessMarksValuesUsedLater)
{
    Front f(
        "var x, y:\n"
        "seq\n"
        "  x := 1\n"
        "  y := x\n");
    int seq = f.ift.mainEntry();
    int first = f.ift.entry(seq).chains[0][0];
    int second = f.ift.entry(seq).chains[0][1];
    // x@first is used by the second entry: live. y@second is never
    // used again: dead.
    EXPECT_TRUE(f.ift.entry(first).output(f.sym("x"))->live);
    EXPECT_FALSE(f.ift.entry(second).output(f.sym("y"))->live);
}

TEST(Ift, LoopCarriedValuesAreLive)
{
    Front f(
        "var i:\n"
        "seq\n"
        "  i := 0\n"
        "  while i < 10\n"
        "    i := i + 1\n");
    int seq = f.ift.mainEntry();
    int whil = f.ift.entry(seq).chains[0][1];
    ASSERT_EQ(f.ift.entry(whil).type, IftEntry::Type::While);
    int body = f.ift.entry(whil).chains[0][1];
    // i updated in the body feeds the next iteration: live.
    EXPECT_TRUE(f.ift.entry(body).output(f.sym("i"))->live);
}

TEST(Ift, InputOutputCarryControlToken)
{
    Front f(
        "chan c:\n"
        "var x:\n"
        "seq\n"
        "  c ! 5\n"
        "  c ? x\n");
    int seq = f.ift.mainEntry();
    int out = f.ift.entry(seq).chains[0][0];
    EXPECT_NE(f.ift.entry(out).input(kControlToken), nullptr);
    EXPECT_NE(f.ift.entry(out).output(kControlToken), nullptr);
    // c is in I of both.
    EXPECT_NE(f.ift.entry(out).input(f.sym("c")), nullptr);
}

TEST(Ift, ParUnionsComponentSets)
{
    Front f(
        "var x, y, a, b:\n"
        "seq\n"
        "  a := 1\n"
        "  b := 2\n"
        "  par\n"
        "    x := a\n"
        "    y := b\n"
        "  a := x + y\n");
    int seq = f.ift.mainEntry();
    int par = f.ift.entry(seq).chains[0][2];
    ASSERT_EQ(f.ift.entry(par).type, IftEntry::Type::Par);
    EXPECT_NE(f.ift.entry(par).input(f.sym("a")), nullptr);
    EXPECT_NE(f.ift.entry(par).input(f.sym("b")), nullptr);
    EXPECT_NE(f.ift.entry(par).output(f.sym("x")), nullptr);
    EXPECT_NE(f.ift.entry(par).output(f.sym("y")), nullptr);
    // Component outputs used after the par are live.
    int comp0 = f.ift.entry(par).chains[0][0];
    EXPECT_TRUE(f.ift.entry(comp0).output(f.sym("x"))->live);
}

TEST(Ift, LocalsDoNotEscape)
{
    Front f(
        "var x:\n"
        "seq\n"
        "  var t:\n"
        "  seq\n"
        "    t := 1\n"
        "    x := t\n");
    // t is declared in the outer seq: the declaring block's interface
    // sets exclude it, while the inner (non-declaring) seq still lists
    // it as an ordinary output.
    int outer = f.ift.mainEntry();
    EXPECT_EQ(f.ift.entry(outer).output(f.sym("t")), nullptr);
    EXPECT_EQ(f.ift.entry(outer).input(f.sym("t")), nullptr);
    EXPECT_NE(f.ift.entry(outer).output(f.sym("x")), nullptr);
    int inner = f.ift.entry(outer).chains[0][0];
    EXPECT_NE(f.ift.entry(inner).output(f.sym("t")), nullptr);
}

TEST(Ift, VarFormalsAreLiveAtProcEnd)
{
    Front f(
        "proc f (value a, var r) =\n"
        "  seq\n"
        "    r := a + 1\n"
        "var x:\n"
        "f (1, x)\n");
    int proc_sym = f.sym("f");
    int root = f.ift.procEntry(proc_sym);
    int assign = f.ift.entry(root).chains[0][0];
    EXPECT_TRUE(f.ift.entry(assign).output(f.sym("r"))->live);
}

TEST(Ift, AblationMarksEverythingLive)
{
    Front f(
        "var x, y:\n"
        "seq\n"
        "  x := 1\n"
        "  y := x\n",
        /*live=*/false);
    int seq = f.ift.mainEntry();
    int second = f.ift.entry(seq).chains[0][1];
    EXPECT_TRUE(f.ift.entry(second).output(f.sym("y"))->live);
}

TEST(Ift, ArrayAppearsInBothSetsOnWrite)
{
    Front f(
        "var v[8]:\n"
        "var i:\n"
        "seq\n"
        "  i := 1\n"
        "  v[i] := 42\n");
    int seq = f.ift.mainEntry();
    int write = f.ift.entry(seq).chains[0][1];
    EXPECT_NE(f.ift.entry(write).input(f.sym("v")), nullptr);
    EXPECT_NE(f.ift.entry(write).output(f.sym("v")), nullptr);
}

} // namespace
