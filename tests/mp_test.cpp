/**
 * @file
 * Tests for the ring bus and the multiprocessor system: context
 * creation, dynamic data-flow graph splicing via channels, kernel traps,
 * and scheduling (thesis Chapters 5.6 and 6).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "isa/assembler.hpp"
#include "isa/runtime.hpp"
#include "mp/ring_bus.hpp"
#include "mp/system.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace qm;
using namespace qm::isa;
using namespace qm::mp;

TEST(RingBus, LocalTransfersSkipTheRing)
{
    RingBus bus({4, 2, 4, 2});
    EXPECT_EQ(bus.transfer(1, 1, 100), 102);
}

TEST(RingBus, RemoteTransferCrossesPartitions)
{
    // 4 PEs, 2 partitions: PEs 0,1 on partition 0; PEs 2,3 on 1.
    RingBus bus({4, 2, 4, 2});
    EXPECT_EQ(bus.partitionOf(0), 0);
    EXPECT_EQ(bus.partitionOf(1), 0);
    EXPECT_EQ(bus.partitionOf(2), 1);
    EXPECT_EQ(bus.partitionOf(3), 1);
    EXPECT_EQ(bus.partitionsCrossed(0, 1), 1);
    EXPECT_EQ(bus.partitionsCrossed(0, 2), 2);
    // 0 -> 1 stays on one partition: overhead 2 + 1 hop of 4.
    EXPECT_EQ(bus.transfer(0, 1, 0), 6);
}

TEST(RingBus, ContentionSerializesSharedPartitions)
{
    RingBus bus({4, 2, 4, 2});
    Cycle first = bus.transfer(0, 1, 0);
    // Second message through the same partition at the same time waits.
    Cycle second = bus.transfer(1, 0, 0);
    EXPECT_GT(second, first);
}

TEST(RingBus, DisjointPartitionsProceedConcurrently)
{
    RingBus bus({4, 2, 4, 2});
    Cycle a = bus.transfer(0, 1, 0);
    Cycle b = bus.transfer(2, 3, 0);
    EXPECT_EQ(a, b);  // no shared partition, no serialization
}

TEST(RingBus, ZeroRetryBudgetLosesOnTheFirstDrop)
{
    // maxRetries=0: a single dropped transfer exhausts the link layer
    // immediately - one attempt, no retry, no backoff charged.
    fault::FaultPlan plan =
        fault::parseFaultPlan("seed=1,rate=1.0,kinds=drop");
    plan.maxRetries = 0;
    fault::FaultInjector faults(plan);
    RingBus bus({4, 2, 4, 2});
    bus.setFaultInjector(&faults);
    BusDelivery d = bus.deliver(0, 2, 0);
    EXPECT_FALSE(d.delivered);
    EXPECT_EQ(d.attempts, 1);
    EXPECT_EQ(bus.stats().counter("fault.bus_drop"), 1u);
    EXPECT_EQ(bus.stats().counter("fault.bus_retry"), 0u);
    EXPECT_EQ(bus.stats().counter("fault.bus_backoff_cycles"), 0u);
    EXPECT_EQ(bus.stats().counter("fault.bus_lost"), 1u);
}

TEST(RingBus, CanSucceedExactlyAtTheLastAllowedAttempt)
{
    // Scan seeds for a delivery whose first maxRetries attempts all
    // drop and whose final allowed attempt lands: the boundary where
    // the retry bound is reached but not exceeded.
    fault::FaultPlan plan =
        fault::parseFaultPlan("seed=1,rate=0.5,kinds=drop");
    plan.maxRetries = 3;
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 1000 && !found; ++seed) {
        plan.seed = seed;
        fault::FaultInjector faults(plan);
        RingBus bus({4, 2, 4, 2});
        bus.setFaultInjector(&faults);
        BusDelivery d = bus.deliver(0, 2, 0);
        if (!d.delivered || d.attempts != plan.maxRetries + 1)
            continue;
        found = true;
        EXPECT_EQ(bus.stats().counter("fault.bus_drop"),
                  static_cast<std::uint64_t>(plan.maxRetries));
        EXPECT_EQ(bus.stats().counter("fault.bus_retry"),
                  static_cast<std::uint64_t>(plan.maxRetries));
        EXPECT_EQ(bus.stats().counter("fault.drop.recovered"),
                  static_cast<std::uint64_t>(plan.maxRetries));
        EXPECT_EQ(bus.stats().counter("fault.bus_lost"), 0u);
    }
    EXPECT_TRUE(found)
        << "no seed in [1,1000] hit the retry bound exactly";
}

TEST(RingBus, BackoffShiftSaturatesAtLargeRetryCounts)
{
    // With 20 retries at rate=1.0 every attempt drops; the backoff
    // exponent is clamped at 16, so the charged cycles must equal
    // sum_{a=0..19} 8 << min(a, 16) rather than overflowing the shift.
    fault::FaultPlan plan =
        fault::parseFaultPlan("seed=7,rate=1.0,kinds=drop");
    plan.maxRetries = 20;
    fault::FaultInjector faults(plan);
    RingBus bus({4, 2, 4, 2});
    bus.setFaultInjector(&faults);
    BusDelivery d = bus.deliver(0, 2, 0);
    EXPECT_FALSE(d.delivered);
    EXPECT_EQ(d.attempts, plan.maxRetries + 1);
    std::uint64_t expected = 0;
    for (int a = 0; a < plan.maxRetries; ++a)
        expected += static_cast<std::uint64_t>(
            plan.retryBackoff << std::min(a, 16));
    EXPECT_EQ(bus.stats().counter("fault.bus_backoff_cycles"),
              expected);
    EXPECT_EQ(bus.stats().counter("fault.bus_drop"),
              static_cast<std::uint64_t>(plan.maxRetries + 1));
}

/**
 * The original PE-by-PE reference walk partitionsCrossed replaced
 * with closed-form partition arithmetic: walk the ring upward from
 * src to dst counting partition boundaries crossed (inclusive of the
 * destination's partition entry), capped at the partition count.
 */
int
walkCrossings(int src, int dst, int pes, int partitions)
{
    if (src == dst)
        return 0;
    auto part = [&](int pe) { return pe * partitions / pes; };
    int crossings = 1;
    int pe = src;
    while (pe != dst) {
        int next = (pe + 1) % pes;
        if (part(next) != part(pe))
            ++crossings;
        pe = next;
    }
    return std::min(crossings, partitions);
}

TEST(RingBus, ClosedFormCrossingsMatchTheReferenceWalk)
{
    // Exhaustive over every (src, dst) pair for machines up to 256
    // PEs, including partition counts that do not divide the PE count
    // (uneven partition blocks are where the arithmetic is easy to
    // get wrong).
    for (int pes : {2, 3, 4, 5, 7, 8, 16, 63, 64, 256}) {
        for (int partitions : {1, 2, 3, 5, 7, 8, pes}) {
            if (partitions > pes)
                continue;
            RingBus bus({pes, partitions, 4, 2});
            for (int src = 0; src < pes; ++src)
                for (int dst = 0; dst < pes; ++dst)
                    ASSERT_EQ(bus.partitionsCrossed(src, dst),
                              walkCrossings(src, dst, pes, partitions))
                        << "pes=" << pes
                        << " partitions=" << partitions
                        << " src=" << src << " dst=" << dst;
        }
    }
}

TEST(RingBus, ConstructorRejectsImpossibleMachines)
{
    // Flat ring with more partitions than PEs: used to be silently
    // clamped, now a hard configuration error.
    EXPECT_THROW(RingBus({4, 8, 4, 2}), FatalError);
    // More local rings than PEs.
    EXPECT_THROW(RingBus({4, 1, 4, 2, /*rings=*/8}), FatalError);
    // 4 rings over 8 PEs leaves 2-PE rings: 3 partitions cannot seat.
    EXPECT_THROW(RingBus({8, 3, 4, 2, /*rings=*/4}), FatalError);
    EXPECT_THROW(RingBus({0, 1, 4, 2}), FatalError);
    EXPECT_THROW(RingBus({4, 0, 4, 2}), FatalError);
    // The same shapes one PE bigger are all buildable.
    EXPECT_NO_THROW(RingBus({8, 8, 4, 2}));
    EXPECT_NO_THROW(RingBus({8, 2, 4, 2, /*rings=*/4}));
}

TEST(RingBus, ParseTopologySpellings)
{
    RingTopology flat = parseTopology("ring");
    EXPECT_EQ(flat.rings, 1);
    EXPECT_EQ(flat.partitions, 2);
    RingTopology wide = parseTopology("ring:8");
    EXPECT_EQ(wide.rings, 1);
    EXPECT_EQ(wide.partitions, 8);
    RingTopology hier = parseTopology("rings:4x2");
    EXPECT_EQ(hier.rings, 4);
    EXPECT_EQ(hier.partitions, 2);
    EXPECT_EQ(topologyName(flat), "ring");
    EXPECT_EQ(topologyName(wide), "ring:8");
    EXPECT_EQ(topologyName(hier), "rings:4x2");
    for (const char *bad :
         {"grid:2x2", "rings:4", "rings:x2", "rings:4x", "ring:0",
          "rings:1x2", "rings:4x0", "", "ring:"})
        EXPECT_THROW(parseTopology(bad), FatalError) << bad;
}

TEST(RingBus, HierarchicalGeometryAndCrossRingPath)
{
    // 8 PEs as 2 rings of 4, 2 partitions each; 1-cycle bridges and
    // backbone hops to make the pinned arithmetic easy to audit.
    RingBus bus({8, 2, 4, 2, /*rings=*/2, /*bridge=*/1,
                 /*backbone=*/1});
    EXPECT_EQ(bus.numRings(), 2);
    EXPECT_EQ(bus.ringOf(3), 0);
    EXPECT_EQ(bus.ringOf(4), 1);
    EXPECT_EQ(bus.ringBase(1), 4);
    EXPECT_EQ(bus.ringSize(0), 4);
    // Same ring: the flat closed form on local indices.
    EXPECT_EQ(bus.partitionsCrossed(0, 3), 2);
    // Cross ring: 2 exit segments + 1 backbone hop + 1 entry segment.
    EXPECT_EQ(bus.partitionsCrossed(0, 4), 4);
    // Wrap direction: 2 exit + 1 backbone + 2 entry.
    EXPECT_EQ(bus.partitionsCrossed(5, 2), 5);
    // Uncontended cross-ring latency: overhead 2 + exit 2*4 + bridge 1
    // + backbone 1 + bridge 1 + entry 1*4 = 17.
    EXPECT_EQ(bus.transfer(0, 4, 0), 17);
    EXPECT_EQ(bus.stats().counter("bus.bridge_transfers"), 1u);
    EXPECT_EQ(bus.stats().counter("bus.backbone_hops"), 1u);
    EXPECT_TRUE(bus.stats().hasHistogram("bus.bridge_wait"));
}

TEST(RingBus, BridgeSerializesCrossRingTraffic)
{
    RingBus bus({8, 2, 4, 2, /*rings=*/2, /*bridge=*/1,
                 /*backbone=*/1});
    // Two messages out of different source partitions of ring 0 share
    // nothing locally but both need ring 0's bridge.
    Cycle a = bus.transfer(3, 4, 0);   // exit 1 segment, bridge at t=6
    Cycle b = bus.transfer(3, 4, 0);
    EXPECT_GT(b, a);
    EXPECT_GT(bus.stats().counter("bus.contention_cycles"), 0u);
    // Traffic inside ring 1 never touches ring 0's segments or bridge.
    RingBus quiet({8, 2, 4, 2, 2, 1, 1});
    Cycle local0 = quiet.transfer(0, 3, 0);
    Cycle local1 = quiet.transfer(4, 7, 0);
    EXPECT_EQ(local0, local1);  // disjoint rings, no serialization
}

TEST(RingBus, HierarchicalSnapshotRestoresTimingState)
{
    RingBus bus({8, 2, 4, 2, /*rings=*/2, /*bridge=*/1,
                 /*backbone=*/1});
    bus.transfer(0, 4, 0);
    RingBus::Snapshot snap = bus.snapshot();
    Cycle contended = bus.transfer(0, 4, 0);
    bus.restore(snap);
    EXPECT_EQ(bus.transfer(0, 4, 0), contended);
    EXPECT_EQ(bus.stats().counter("bus.remote_transfers"), 2u);
}

/** Boot assembly that exits immediately. */
const char *kExitProgram =
    "main:\n"
    "  trap #0,#0\n";

TEST(System, BootAndExit)
{
    ObjectCode code = assemble(kExitProgram);
    SystemConfig config;
    config.numPes = 1;
    System system(code, config);
    RunResult result = system.run("main");
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.contexts, 1u);
    EXPECT_GT(result.cycles, 0);
}

TEST(System, RunIsSingleUse)
{
    ObjectCode code = assemble(kExitProgram);
    System system(code, SystemConfig{});
    system.run("main");
    EXPECT_THROW(system.run("main"), PanicError);
}

/**
 * Parent rforks a child, sends it two values on the child's in channel,
 * and receives their sum from the child's out channel (in = id,
 * out = id + 1). The classic graph-splice rendezvous of section 4.2.
 */
const char *kForkAddProgram =
    "main:\n"
    "  trap #1,@child :r17\n"   // rfork -> r17 = child in-channel
    "  send r17,#30\n"
    "  send r17,#12\n"
    "  plus r17,#1 :r18\n"      // child's out channel
    "  recv r18 :r19\n"
    "  store #6291456,r19\n"    // data segment base
    "  trap #0,#0\n"
    "child:\n"
    "  trap #3,#0 :r17\n"       // getin
    "  trap #4,#0 :r18\n"       // getout
    "  recv r17 :r0\n"
    "  recv r17 :r1\n"
    "  plus++ r0,r1 :r19\n"
    "  send r18,r19\n"
    "  trap #0,#0\n";

TEST(System, ForkSendReceiveComputesAcrossContexts)
{
    for (int pes : {1, 2, 4}) {
        ObjectCode code = assemble(kForkAddProgram);
        SystemConfig config;
        config.numPes = pes;
        System system(code, config);
        RunResult result = system.run("main");
        ASSERT_TRUE(result.completed) << "pes=" << pes;
        EXPECT_EQ(system.memory().readWord(kDataBase), 42u)
            << "pes=" << pes;
        EXPECT_EQ(result.contexts, 2u);
        EXPECT_GE(result.rendezvous, 3u);
    }
}

/**
 * Fan-out: the parent forks N children; child k computes k*k and sends
 * it back; the parent sums the results. Exercises round-robin placement
 * across PEs and out-of-order rendezvous completion.
 */
const char *kFanOutProgram =
    "main:\n"
    "  plus #0,#0 :r20\n"        // sum
    "  plus #0,#0 :r21\n"        // k
    "  plus #6,#0 :r22\n"        // N = 6
    "fork_loop:\n"
    "  trap #1,@child :r17\n"
    "  send r17,r21\n"           // give the child its index
    "  plus r17,#1 :r23\n"
    "  recv r23 :r24\n"          // collect k*k
    "  plus r20,r24 :r20\n"
    "  plus r21,#1 :r21\n"
    "  lt r21,r22 :r25\n"
    "  bne r25,@fork_loop\n"
    "  store #6291456,r20\n"
    "  trap #0,#0\n"
    "child:\n"
    "  trap #3,#0 :r17\n"
    "  trap #4,#0 :r18\n"
    "  recv r17 :r0\n"
    "  mul r0,r0 :r19\n"
    "  plus+ r0,#0 :dummy,dummy\n"  // consume the queue operand
    "  send r18,r19\n"
    "  trap #0,#0\n";

TEST(System, FanOutAcrossPes)
{
    // 0+1+4+9+16+25 = 55 regardless of PE count.
    for (int pes : {1, 2, 3, 8}) {
        ObjectCode code = assemble(kFanOutProgram);
        SystemConfig config;
        config.numPes = pes;
        System system(code, config);
        RunResult result = system.run("main");
        ASSERT_TRUE(result.completed) << "pes=" << pes;
        EXPECT_EQ(system.memory().readWord(kDataBase), 55u)
            << "pes=" << pes;
        EXPECT_EQ(result.contexts, 7u);
    }
}

TEST(System, IforkInheritsOutChannel)
{
    // main rforks head; head iforks tail; tail sends on its inherited
    // out channel, which is head's out, so main receives tail's value.
    const char *program =
        "main:\n"
        "  trap #1,@head :r17\n"
        "  send r17,#5\n"
        "  plus r17,#1 :r18\n"
        "  recv r18 :r19\n"
        "  store #6291456,r19\n"
        "  trap #0,#0\n"
        "head:\n"
        "  trap #3,#0 :r17\n"
        "  recv r17 :r0\n"
        "  trap #2,@tail :r18\n"   // ifork: child out = head out
        "  plus+ r0,#1 :r19\n"
        "  send r18,r19\n"
        "  trap #0,#0\n"
        "tail:\n"
        "  trap #3,#0 :r17\n"
        "  trap #4,#0 :r18\n"
        "  recv r17 :r0\n"
        "  mul+ r0,#10 :r19\n"
        "  send r18,r19\n"
        "  trap #0,#0\n";
    ObjectCode code = assemble(program);
    SystemConfig config;
    config.numPes = 2;
    System system(code, config);
    RunResult result = system.run("main");
    ASSERT_TRUE(result.completed);
    // (5+1)*10 = 60 lands back in main.
    EXPECT_EQ(system.memory().readWord(kDataBase), 60u);
}

TEST(System, DeadlockIsDetectedAndReported)
{
    // A context that receives on a channel nobody sends to.
    const char *program =
        "main:\n"
        "  trap #8,#0 :r17\n"   // fresh channel
        "  recv r17 :r18\n"
        "  trap #0,#0\n";
    ObjectCode code = assemble(program);
    System system(code, SystemConfig{});
    EXPECT_THROW(system.run("main"), FatalError);
}

TEST(System, AllocReturnsDistinctRegions)
{
    const char *program =
        "main:\n"
        "  trap #5,#64 :r17\n"
        "  trap #5,#64 :r18\n"
        "  minus r18,r17 :r19\n"
        "  store #6291456,r19\n"
        "  trap #0,#0\n";
    ObjectCode code = assemble(program);
    System system(code, SystemConfig{});
    system.run("main");
    EXPECT_EQ(system.memory().readWord(kDataBase), 64u);
}

TEST(System, WaitBlocksUntilTime)
{
    const char *program =
        "main:\n"
        "  trap #7,#2000\n"    // wait until cycle 2000
        "  trap #6,#0 :r17\n"  // now
        "  store #6291456,r17\n"
        "  trap #0,#0\n";
    ObjectCode code = assemble(program);
    System system(code, SystemConfig{});
    RunResult result = system.run("main");
    ASSERT_TRUE(result.completed);
    EXPECT_GE(system.memory().readWord(kDataBase), 2000u);
    EXPECT_GE(result.cycles, 2000);
}

TEST(System, MoreWorkersShortenElapsedTime)
{
    // Six independent compute-heavy children: wall-clock cycles with 4
    // PEs must be well under the 1-PE time.
    const char *program =
        "main:\n"
        "  plus #0,#0 :r21\n"
        "fork_loop:\n"
        "  trap #1,@worker :r17\n"
        "  send r17,#1000\n"
        "  plus r17,#1 :r23\n"
        "  plus r21,#1 :r21\n"
        "  lt r21,#6 :r25\n"
        "  bne r25,@fork_loop\n"
        "  trap #0,#0\n"
        "worker:\n"
        "  trap #3,#0 :r17\n"
        "  recv r17 :r0\n"
        "  plus+ r0,#0 :r18\n"
        "spin:\n"
        "  minus r18,#1 :r18\n"
        "  bne r18,@spin\n"
        "  trap #0,#0\n";

    auto cycles_for = [&](int pes) {
        ObjectCode code = assemble(program);
        SystemConfig config;
        config.numPes = pes;
        System system(code, config);
        RunResult result = system.run("main");
        EXPECT_TRUE(result.completed);
        return result.cycles;
    };
    Cycle one = cycles_for(1);
    Cycle four = cycles_for(4);
    EXPECT_LT(four * 2, one);  // at least 2x faster with 4 PEs
}

TEST(System, TimeoutStillReportsProgress)
{
    // Six spinning workers cannot finish in 500 cycles; the run must
    // time out but still report the work it did (the old timeout path
    // returned zeroed instruction/utilization statistics).
    const char *program =
        "main:\n"
        "  plus #100000,#0 :r18\n"
        "spin:\n"
        "  minus r18,#1 :r18\n"
        "  bne r18,@spin\n"
        "  trap #0,#0\n";
    ObjectCode code = assemble(program);
    SystemConfig config;
    config.numPes = 2;
    System system(code, config);
    RunResult result = system.run("main", /*max_cycles=*/500);
    EXPECT_FALSE(result.completed);
    EXPECT_GT(result.instructions, 0u);
    EXPECT_GT(result.cycles, 0);
    EXPECT_LE(result.cycles, 600);  // close to the limit, not past it
    EXPECT_GT(result.utilization, 0.0);
    EXPECT_EQ(result.contexts, 1u);
    // Stats are finalized too: merged PE counters and the breakdown.
    EXPECT_GT(system.stats().counter("pe.instructions"), 0u);
    EXPECT_GT(result.computeCycles, 0);
}

TEST(System, TimeoutOvershootIsBoundedByOneStep)
{
    // Regression: the budget used to be checked only between
    // dispatches, so the 16-step inner batch could run a PE well past
    // max_cycles (tens of cycles for cheap instructions, more for
    // expensive ones). The check now fires inside the batch, bounding
    // the overshoot by a single instruction plus end-of-run
    // bookkeeping.
    const char *program =
        "main:\n"
        "  plus #100000,#0 :r18\n"
        "spin:\n"
        "  minus r18,#1 :r18\n"
        "  bne r18,@spin\n"
        "  trap #0,#0\n";
    ObjectCode code = assemble(program);
    for (Cycle budget : {500, 777, 1000}) {
        SystemConfig config;
        System system(code, config);
        RunResult result = system.run("main", budget);
        EXPECT_FALSE(result.completed);
        EXPECT_GT(result.cycles, 0);
        // Slack: the instruction that crosses the budget (<= a few
        // cycles for this program) - far below the up-to-16-step
        // batch overshoot of the old code.
        EXPECT_LE(result.cycles, budget + 8) << "budget " << budget;
    }
}

TEST(System, CycleBreakdownAccountsForEveryPeCycle)
{
    for (int pes : {1, 4}) {
        ObjectCode code = assemble(kFanOutProgram);
        SystemConfig config;
        config.numPes = pes;
        System system(code, config);
        RunResult result = system.run("main");
        ASSERT_TRUE(result.completed);
        EXPECT_EQ(result.computeCycles + result.kernelCycles +
                      result.blockedCycles,
                  result.cycles * pes)
            << "pes=" << pes;
        EXPECT_GT(result.computeCycles, 0);
        EXPECT_GT(result.kernelCycles, 0);
    }
}

TEST(System, TraceEventCountsMatchStatCounters)
{
    ObjectCode code = assemble(kFanOutProgram);
    SystemConfig config;
    config.numPes = 4;
    config.traceConfig.enabled = true;
    System system(code, config);
    RunResult result = system.run("main");
    ASSERT_TRUE(result.completed);

    const trace::Tracer &tracer = system.tracer();
    using trace::EventKind;
    EXPECT_EQ(tracer.countOf(EventKind::CtxCreate),
              system.stats().counter("sys.contexts_created"));
    EXPECT_EQ(tracer.countOf(EventKind::CtxFinish),
              system.stats().counter("sys.contexts_finished"));
    EXPECT_EQ(tracer.countOf(EventKind::Rendezvous),
              system.stats().counter("msg.rendezvous"));
    EXPECT_EQ(tracer.countOf(EventKind::BusTransfer),
              system.stats().counter("bus.remote_transfers"));
    EXPECT_EQ(tracer.countOf(EventKind::TrapEnter),
              system.stats().counter("pe.traps"));
    EXPECT_EQ(tracer.dropped(), 0u);

    // Busy spans never overlap per PE and sum to the busy time that
    // utilization is computed from.
    std::map<int, Cycle> last_end;
    for (const trace::Event &e : tracer.events()) {
        if (e.kind != EventKind::PeBusy)
            continue;
        EXPECT_GE(e.at, last_end[e.pe]);
        EXPECT_GE(e.end, e.at);
        last_end[e.pe] = e.end;
    }
}

TEST(System, TracingDisabledRecordsNothing)
{
    ObjectCode code = assemble(kForkAddProgram);
    System system(code, SystemConfig{});
    system.run("main");
    EXPECT_FALSE(system.tracer().enabled());
    EXPECT_TRUE(system.tracer().events().empty());
}

} // namespace
