/**
 * @file
 * Tests for the pipelined-ALU cost model (thesis section 3.4).
 */
#include <gtest/gtest.h>

#include "expr/enumerate.hpp"
#include "expr/parse_tree.hpp"
#include "expr/pipeline_model.hpp"
#include "expr/traversal.hpp"

namespace {

using namespace qm::expr;

TEST(Pipeline, SingleLeafTakesOneCycle)
{
    ParseTree tree = ParseTree::parse("a");
    PipelineConfig config{2, false};
    EXPECT_EQ(queueCycles(tree, levelOrder(tree), config), 1);
    EXPECT_EQ(stackCycles(tree, postOrder(tree), config), 1);
}

TEST(Pipeline, SingleBinaryOpCosts)
{
    // fetch a @0, fetch b @1, add issues @2, completes @2+S.
    ParseTree tree = ParseTree::parse("a+b");
    for (int stages = 1; stages <= 5; ++stages) {
        PipelineConfig config{stages, false};
        EXPECT_EQ(queueCycles(tree, levelOrder(tree), config), 2 + stages);
        EXPECT_EQ(stackCycles(tree, postOrder(tree), config), 2 + stages);
    }
}

TEST(Pipeline, QueueNeverSlowerThanStack)
{
    // Thesis: "the queue-based execution model always meets or exceeds
    // the performance of the stack-based machine ... for all instruction
    // sequences (not just the average)". Exhaustive check to 9 nodes for
    // both fetch disciplines and several pipeline depths.
    for (bool overlapped : {false, true}) {
        for (int stages : {1, 2, 3, 4}) {
            PipelineConfig config{stages, overlapped};
            for (int n = 1; n <= 9; ++n) {
                forEachTree(n, [&](const ParseTree &tree) {
                    long q = queueCycles(tree, levelOrder(tree), config);
                    long s = stackCycles(tree, postOrder(tree), config);
                    ASSERT_LE(q, s)
                        << "tree " << tree.toString() << " stages "
                        << stages << " overlapped " << overlapped;
                });
            }
        }
    }
}

TEST(Pipeline, NoSpeedupWithSingleStageAlu)
{
    // With a 1-stage ALU there is no pipelining to exploit, so the two
    // machines tie on every tree in the overlapped-fetch case.
    PipelineConfig config{1, true};
    for (int n = 1; n <= 8; ++n) {
        forEachTree(n, [&](const ParseTree &tree) {
            long q = queueCycles(tree, levelOrder(tree), config);
            long s = stackCycles(tree, postOrder(tree), config);
            ASSERT_EQ(q, s) << tree.toString();
        });
    }
}

TEST(Pipeline, SmallTreesShowNoBenefit)
{
    // Table 3.2: speed-up is 1.00 for trees of up to 4 nodes.
    PipelineConfig config{2, false};
    for (int n = 1; n <= 4; ++n) {
        SpeedupResult r = averageSpeedup(n, config);
        EXPECT_DOUBLE_EQ(r.meanSpeedup, 1.0) << "n=" << n;
    }
}

TEST(Pipeline, SpeedupGrowsWithTreeSize)
{
    // Table 3.2: mean speed-up is non-decreasing in tree size and
    // materially above 1 by 11 nodes, for both cases.
    for (bool overlapped : {false, true}) {
        PipelineConfig config{2, overlapped};
        double prev = 1.0;
        for (int n = 5; n <= 11; ++n) {
            SpeedupResult r = averageSpeedup(n, config);
            EXPECT_GE(r.meanSpeedup, prev - 0.02)
                << "n=" << n << " overlapped=" << overlapped;
            prev = r.meanSpeedup;
        }
        SpeedupResult at11 = averageSpeedup(11, config);
        EXPECT_GT(at11.meanSpeedup, 1.03);
        EXPECT_LT(at11.meanSpeedup, 1.6);
    }
}

TEST(Pipeline, OverlappedFetchBeatsNonOverlappedAt11Nodes)
{
    // Table 3.2: case 2 mean speed-up >= case 1 mean speed-up.
    SpeedupResult case1 = averageSpeedup(11, PipelineConfig{2, false});
    SpeedupResult case2 = averageSpeedup(11, PipelineConfig{2, true});
    EXPECT_GE(case2.meanSpeedup + 1e-9, case1.meanSpeedup);
}

TEST(Pipeline, Case1BenefitGrowsWithPipelineDepth)
{
    // Table 3.3: under case 1 the queue machine's advantage grows with
    // the number of pipeline stages.
    double prev = 0.0;
    for (int stages : {1, 2, 3, 4, 5}) {
        SpeedupResult r = averageSpeedup(9, PipelineConfig{stages, false});
        EXPECT_GE(r.meanSpeedup + 1e-9, prev) << "stages=" << stages;
        prev = r.meanSpeedup;
    }
}

} // namespace
