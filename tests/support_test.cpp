/**
 * @file
 * Unit tests for the support library (diagnostics, stats, tables, RNG,
 * JSON writer, CLI parsing).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "support/cli.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace qm;

TEST(Diagnostics, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
    try {
        panic("value=", 7);
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: value=7");
    }
}

TEST(Diagnostics, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("bad input"), FatalError);
}

TEST(Diagnostics, ConditionalVariantsFireOnlyWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "no"));
    EXPECT_NO_THROW(fatalIf(false, "no"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

TEST(Format, CatJoinsHeterogeneousValues)
{
    EXPECT_EQ(cat("a", 1, 'b', 2.5), "a1b2.5");
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

TEST(Stats, CountersAccumulate)
{
    StatSet stats;
    stats.inc("instructions");
    stats.inc("instructions", 9);
    EXPECT_EQ(stats.counter("instructions"), 10u);
    EXPECT_EQ(stats.counter("missing"), 0u);
    EXPECT_TRUE(stats.hasCounter("instructions"));
    EXPECT_FALSE(stats.hasCounter("missing"));
}

TEST(Stats, ScalarsOverwrite)
{
    StatSet stats;
    stats.set("speedup", 1.5);
    stats.set("speedup", 2.5);
    EXPECT_DOUBLE_EQ(stats.scalar("speedup"), 2.5);
}

TEST(Stats, DistributionTracksMoments)
{
    StatSet stats;
    stats.sample("queue_len", 4);
    stats.sample("queue_len", 2);
    stats.sample("queue_len", 6);
    const Distribution &d = stats.distribution("queue_len");
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 2);
    EXPECT_DOUBLE_EQ(d.max(), 6);
    EXPECT_DOUBLE_EQ(d.mean(), 4);
}

TEST(Stats, MergeAddsCounters)
{
    StatSet a, b;
    a.inc("ops", 3);
    b.inc("ops", 4);
    b.inc("msgs", 1);
    a.merge(b);
    EXPECT_EQ(a.counter("ops"), 7u);
    EXPECT_EQ(a.counter("msgs"), 1u);
}

TEST(Stats, RenderListsEverything)
{
    StatSet stats;
    stats.inc("cycles", 100);
    std::string text = stats.render();
    EXPECT_NE(text.find("cycles 100"), std::string::npos);
}

TEST(Table, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"x", "10"});
    table.addRow({"longer", "2"});
    std::string text = table.render();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("longer"), std::string::npos);
    // Each line has the same structure; the separator row exists.
    EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, RejectsRaggedRows)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), PanicError);
}

TEST(Json, WritesNestedStructure)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject()
        .key("name").value("bench")
        .key("ok").value(true)
        .key("runs").beginArray()
        .value(1).value(2)
        .endArray()
        .endObject();
    EXPECT_EQ(os.str(), "{\"name\":\"bench\",\"ok\":true,"
                        "\"runs\":[1,2]}");
}

TEST(Json, FiniteDoublesKeepFixedPrecision)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.value(2.5);
    EXPECT_EQ(os.str(), "2.500000");
}

TEST(Json, NonFiniteDoublesBecomeNull)
{
    // Regression: nan/inf used to stream as bare `nan`/`inf` tokens,
    // which no JSON parser accepts - one timed-out ratio invalidated
    // the whole BENCH_*.json document.
    std::ostringstream os;
    JsonWriter json(os);
    json.beginArray()
        .value(std::numeric_limits<double>::quiet_NaN())
        .value(std::numeric_limits<double>::infinity())
        .value(-std::numeric_limits<double>::infinity())
        .value(1.0)
        .endArray();
    EXPECT_EQ(os.str(), "[null,null,null,1.000000]");
}

TEST(Cli, ParsesIntegersInRange)
{
    EXPECT_EQ(parseIntArg("42", "--n", 1, 100), 42);
    EXPECT_EQ(parseIntArg("-3", "--n", -10, 10), -3);
    EXPECT_EQ(parsePositiveIntArg("8", "--jobs"), 8);
}

TEST(Cli, RejectsMalformedOrOutOfRangeArguments)
{
    EXPECT_THROW(parseIntArg("foo", "--n", 1, 100), FatalError);
    EXPECT_THROW(parseIntArg("", "--n", 1, 100), FatalError);
    EXPECT_THROW(parseIntArg("12x", "--n", 1, 100), FatalError);
    EXPECT_THROW(parseIntArg("101", "--n", 1, 100), FatalError);
    EXPECT_THROW(parsePositiveIntArg("0", "--pes"), FatalError);
    EXPECT_THROW(parsePositiveIntArg("-4", "--pes"), FatalError);
    EXPECT_THROW(parsePositiveIntArg("99999999999999999999", "--pes"),
                 FatalError);
}

TEST(Rng, DeterministicAcrossInstances)
{
    SplitMix64 a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeStaysInBounds)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

} // namespace
