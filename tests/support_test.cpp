/**
 * @file
 * Unit tests for the support library (diagnostics, stats, tables, RNG,
 * JSON writer, CLI parsing).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "support/cli.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace qm;

TEST(Diagnostics, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
    try {
        panic("value=", 7);
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: value=7");
    }
}

TEST(Diagnostics, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("bad input"), FatalError);
}

TEST(Diagnostics, ConditionalVariantsFireOnlyWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "no"));
    EXPECT_NO_THROW(fatalIf(false, "no"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

TEST(Format, CatJoinsHeterogeneousValues)
{
    EXPECT_EQ(cat("a", 1, 'b', 2.5), "a1b2.5");
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

TEST(Stats, CountersAccumulate)
{
    StatSet stats;
    stats.inc("instructions");
    stats.inc("instructions", 9);
    EXPECT_EQ(stats.counter("instructions"), 10u);
    EXPECT_EQ(stats.counter("missing"), 0u);
    EXPECT_TRUE(stats.hasCounter("instructions"));
    EXPECT_FALSE(stats.hasCounter("missing"));
}

TEST(Stats, ScalarsOverwrite)
{
    StatSet stats;
    stats.set("speedup", 1.5);
    stats.set("speedup", 2.5);
    EXPECT_DOUBLE_EQ(stats.scalar("speedup"), 2.5);
}

TEST(Stats, DistributionTracksMoments)
{
    StatSet stats;
    stats.sample("queue_len", 4);
    stats.sample("queue_len", 2);
    stats.sample("queue_len", 6);
    const Distribution &d = stats.distribution("queue_len");
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 2);
    EXPECT_DOUBLE_EQ(d.max(), 6);
    EXPECT_DOUBLE_EQ(d.mean(), 4);
}

TEST(Stats, MergeAddsCounters)
{
    StatSet a, b;
    a.inc("ops", 3);
    b.inc("ops", 4);
    b.inc("msgs", 1);
    a.merge(b);
    EXPECT_EQ(a.counter("ops"), 7u);
    EXPECT_EQ(a.counter("msgs"), 1u);
}

TEST(Stats, RenderListsEverything)
{
    StatSet stats;
    stats.inc("cycles", 100);
    std::string text = stats.render();
    EXPECT_NE(text.find("cycles 100"), std::string::npos);
}

TEST(Histogram, BucketBoundariesArePowersOfTwo)
{
    // Bucket 0 is exact zeros; bucket i covers [2^(i-1), 2^i).
    EXPECT_EQ(Histogram::bucketIndex(0), 0);
    EXPECT_EQ(Histogram::bucketIndex(1), 1);
    EXPECT_EQ(Histogram::bucketIndex(2), 2);
    EXPECT_EQ(Histogram::bucketIndex(3), 2);
    EXPECT_EQ(Histogram::bucketIndex(4), 3);
    EXPECT_EQ(Histogram::bucketIndex(1023), 10);
    EXPECT_EQ(Histogram::bucketIndex(1024), 11);
    EXPECT_EQ(Histogram::bucketLow(2), 2u);
    EXPECT_EQ(Histogram::bucketHigh(2), 4u);
    EXPECT_EQ(Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Histogram::bucketHigh(0), 1u);
    // Every non-overflow boundary is self-consistent: the low bound
    // lands in its own bucket, one less lands in the previous one.
    for (int i = 1; i < Histogram::kNumBuckets - 1; ++i) {
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketLow(i)), i);
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketHigh(i) - 1),
                  i);
    }
}

TEST(Histogram, OverflowBucketCatchesHugeSamples)
{
    const int last = Histogram::kNumBuckets - 1;
    EXPECT_EQ(Histogram::bucketIndex(std::uint64_t{1} << (last - 1)),
              last);
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}), last);
    Histogram h;
    h.sample(std::uint64_t{1} << 40);
    h.sample(3);
    EXPECT_EQ(h.bucketCount(last), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    // Count/sum/min/max stay exact even through the overflow bucket.
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.sum(), (std::uint64_t{1} << 40) + 3);
    EXPECT_EQ(h.min(), 3u);
    EXPECT_EQ(h.max(), std::uint64_t{1} << 40);
}

TEST(Histogram, ExactMomentsAndEmptyBehaviour)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    h.sample(0);
    h.sample(10);
    h.sample(20);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 30u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 20u);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
    EXPECT_EQ(h.bucketCount(0), 1u);  // the zero sample
}

TEST(Histogram, PercentilesInterpolateWithinEnvelope)
{
    Histogram uniform;
    for (int i = 0; i < 100; ++i)
        uniform.sample(7);  // one bucket, one value
    EXPECT_DOUBLE_EQ(uniform.percentile(0), 7.0);
    EXPECT_DOUBLE_EQ(uniform.percentile(50), 7.0);
    EXPECT_DOUBLE_EQ(uniform.percentile(100), 7.0);

    Histogram spread;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        spread.sample(v);
    // Estimates are within a power of two and clamped to [min, max];
    // they must also be monotone in p.
    double p50 = spread.percentile(50);
    double p90 = spread.percentile(90);
    double p99 = spread.percentile(99);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p99, 1000.0);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_GT(p50, 256.0);   // true p50 is 500; bucket [512,1024)
    EXPECT_GT(p99, 512.0);   // true p99 is 990
}

TEST(Histogram, MergeIsExactBucketwiseAddition)
{
    Histogram a, b, reference;
    for (std::uint64_t v : {0u, 1u, 5u, 9u}) {
        a.sample(v);
        reference.sample(v);
    }
    for (std::uint64_t v : {2u, 5u, 1000u}) {
        b.sample(v);
        reference.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), reference.count());
    EXPECT_EQ(a.sum(), reference.sum());
    EXPECT_EQ(a.min(), reference.min());
    EXPECT_EQ(a.max(), reference.max());
    for (int i = 0; i < Histogram::kNumBuckets; ++i)
        EXPECT_EQ(a.bucketCount(i), reference.bucketCount(i));
    // Merging an empty histogram changes nothing.
    Histogram empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), reference.count());
    EXPECT_EQ(a.min(), reference.min());
}

TEST(Histogram, SingleSamplePercentilesAreExact)
{
    Histogram h;
    h.sample(42);
    for (double p : {0.0, 1.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), 42.0);
}

TEST(Histogram, OutOfRangePercentilesClampToTheValidRange)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.percentile(-10), h.percentile(0));
    EXPECT_DOUBLE_EQ(h.percentile(250), h.percentile(100));
}

TEST(Histogram, PercentileAtUint64MaxDoesNotWrap)
{
    // Regression: the bucket's upper cap used to be computed as
    // min(bucketHigh, max + 1), which wraps to 0 when max is
    // UINT64_MAX and collapses the overflow bucket to [lo, lo+1) -
    // p100 then reported ~min instead of ~max.
    Histogram h;
    h.sample(std::uint64_t{1} << 35);
    h.sample(~std::uint64_t{0});
    double p100 = h.percentile(100);
    EXPECT_GE(p100, 9.0e18);
    EXPECT_LE(h.percentile(50), p100);
}

TEST(Histogram, MergeSaturatesInsteadOfWrapping)
{
    std::array<std::uint64_t, Histogram::kNumBuckets> buckets{};
    std::uint64_t near_max = ~std::uint64_t{0} - 1;
    buckets[1] = near_max;  // all samples were 1
    Histogram big =
        Histogram::fromRaw(near_max, near_max, 1, 1, buckets);
    Histogram small;
    small.sample(1);
    small.sample(1);
    small.sample(1);
    big.merge(small);
    // count/sum/bucket would each wrap to 1; they must pin instead.
    EXPECT_EQ(big.count(), ~std::uint64_t{0});
    EXPECT_EQ(big.sum(), ~std::uint64_t{0});
    EXPECT_EQ(big.bucketCount(1), ~std::uint64_t{0});
    EXPECT_EQ(big.min(), 1u);
    EXPECT_EQ(big.max(), 1u);
}

TEST(Stats, HistogramsRegisterAndRender)
{
    StatSet stats;
    stats.record("msg.latency", 4);
    stats.record("msg.latency", 12);
    EXPECT_TRUE(stats.hasHistogram("msg.latency"));
    EXPECT_FALSE(stats.hasHistogram("missing"));
    EXPECT_EQ(stats.histogram("msg.latency").count(), 2u);
    EXPECT_EQ(stats.histogramMap().size(), 1u);
    std::string text = stats.render();
    EXPECT_NE(text.find("msg.latency"), std::string::npos);
}

TEST(Stats, ScopedViewPrefixesEveryKind)
{
    StatSet stats;
    StatScope pe = stats.scoped("pe3.");
    pe.inc("traps", 2);
    pe.set("clock", 99.0);
    pe.record("ready_wait", 7);
    EXPECT_EQ(stats.counter("pe3.traps"), 2u);
    EXPECT_DOUBLE_EQ(stats.scalar("pe3.clock"), 99.0);
    EXPECT_TRUE(stats.hasHistogram("pe3.ready_wait"));
    EXPECT_EQ(stats.histogram("pe3.ready_wait").count(), 1u);
}

TEST(Stats, MergeScopedPrefixesIncomingNames)
{
    StatSet total, pe;
    pe.inc("instructions", 5);
    pe.record("trap_service", 30);
    total.inc("instructions", 1);
    total.mergeScoped(pe, "pe1.");
    EXPECT_EQ(total.counter("pe1.instructions"), 5u);
    EXPECT_EQ(total.counter("instructions"), 1u);  // untouched
    EXPECT_TRUE(total.hasHistogram("pe1.trap_service"));
    EXPECT_FALSE(total.hasHistogram("trap_service"));
}

TEST(Stats, MergeFoldsHistogramsExactly)
{
    StatSet a, b;
    a.record("bus.hops", 1);
    b.record("bus.hops", 3);
    b.record("bus.hops", 3);
    a.merge(b);
    EXPECT_EQ(a.histogram("bus.hops").count(), 3u);
    EXPECT_EQ(a.histogram("bus.hops").sum(), 7u);
}

TEST(JsonParse, ReadsNestedDocument)
{
    JsonValue doc = parseJson(
        "{\"n\": 42, \"x\": -1.5, \"s\": \"a\\nb\", \"flag\": true,"
        " \"list\": [1, 2, 3], \"obj\": {\"inner\": \"yes\"}}");
    EXPECT_TRUE(doc.isObject());
    EXPECT_EQ(doc.intval("n"), 42);
    EXPECT_DOUBLE_EQ(doc.num("x"), -1.5);
    EXPECT_EQ(doc.str("s"), "a\nb");
    EXPECT_TRUE(doc.get("flag").boolean);
    EXPECT_EQ(doc.get("list").items.size(), 3u);
    EXPECT_DOUBLE_EQ(doc.get("list").items[1].number, 2.0);
    EXPECT_EQ(doc.get("obj").str("inner"), "yes");
    // Absent members come back as fallbacks / null sentinels.
    EXPECT_EQ(doc.intval("missing", -7), -7);
    EXPECT_EQ(doc.str("missing", "dflt"), "dflt");
    EXPECT_TRUE(doc.get("missing").isNull());
}

TEST(JsonParse, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{\"unterminated\": "), FatalError);
    EXPECT_THROW(parseJson("[1, 2,"), FatalError);
    EXPECT_THROW(parseJson("nope"), FatalError);
    EXPECT_THROW(parseJson(""), FatalError);
}

TEST(Table, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"x", "10"});
    table.addRow({"longer", "2"});
    std::string text = table.render();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("longer"), std::string::npos);
    // Each line has the same structure; the separator row exists.
    EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, RejectsRaggedRows)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), PanicError);
}

TEST(Json, WritesNestedStructure)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject()
        .key("name").value("bench")
        .key("ok").value(true)
        .key("runs").beginArray()
        .value(1).value(2)
        .endArray()
        .endObject();
    EXPECT_EQ(os.str(), "{\"name\":\"bench\",\"ok\":true,"
                        "\"runs\":[1,2]}");
}

TEST(Json, FiniteDoublesKeepFixedPrecision)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.value(2.5);
    EXPECT_EQ(os.str(), "2.500000");
}

TEST(Json, NonFiniteDoublesBecomeNull)
{
    // Regression: nan/inf used to stream as bare `nan`/`inf` tokens,
    // which no JSON parser accepts - one timed-out ratio invalidated
    // the whole BENCH_*.json document.
    std::ostringstream os;
    JsonWriter json(os);
    json.beginArray()
        .value(std::numeric_limits<double>::quiet_NaN())
        .value(std::numeric_limits<double>::infinity())
        .value(-std::numeric_limits<double>::infinity())
        .value(1.0)
        .endArray();
    EXPECT_EQ(os.str(), "[null,null,null,1.000000]");
}

TEST(Cli, ParsesIntegersInRange)
{
    EXPECT_EQ(parseIntArg("42", "--n", 1, 100), 42);
    EXPECT_EQ(parseIntArg("-3", "--n", -10, 10), -3);
    EXPECT_EQ(parsePositiveIntArg("8", "--jobs"), 8);
}

TEST(Cli, RejectsMalformedOrOutOfRangeArguments)
{
    EXPECT_THROW(parseIntArg("foo", "--n", 1, 100), FatalError);
    EXPECT_THROW(parseIntArg("", "--n", 1, 100), FatalError);
    EXPECT_THROW(parseIntArg("12x", "--n", 1, 100), FatalError);
    EXPECT_THROW(parseIntArg("101", "--n", 1, 100), FatalError);
    EXPECT_THROW(parsePositiveIntArg("0", "--pes"), FatalError);
    EXPECT_THROW(parsePositiveIntArg("-4", "--pes"), FatalError);
    EXPECT_THROW(parsePositiveIntArg("99999999999999999999", "--pes"),
                 FatalError);
}

TEST(Rng, DeterministicAcrossInstances)
{
    SplitMix64 a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeStaysInBounds)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

} // namespace
