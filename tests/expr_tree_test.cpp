/**
 * @file
 * Tests for parse trees, traversals, the level-order conjugate tree
 * (thesis Fig 3.1/3.3), and tree enumeration (thesis Table 3.2 column 2).
 */
#include <gtest/gtest.h>

#include <set>

#include "expr/conjugate.hpp"
#include "expr/enumerate.hpp"
#include "expr/parse_tree.hpp"
#include "expr/traversal.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace qm;
using namespace qm::expr;

std::vector<std::string>
labels(const ParseTree &tree, const std::vector<int> &order)
{
    std::vector<std::string> out;
    for (int id : order)
        out.push_back(tree.node(id).label);
    return out;
}

TEST(ParseTree, ParsesThesisExpression)
{
    // f <- a*b + (c-d)/e, the running example of Table 3.1 / Fig 3.1.
    ParseTree tree = ParseTree::parse("a*b + (c-d)/e");
    EXPECT_EQ(tree.size(), 9);
    EXPECT_EQ(tree.toString(), "((a * b) + ((c - d) / e))");
    EXPECT_EQ(tree.leafCount(), 5);
    EXPECT_EQ(tree.height(), 3);
}

TEST(ParseTree, ParsesUnaryMinus)
{
    ParseTree tree = ParseTree::parse("-(a - b)");
    EXPECT_EQ(tree.toString(), "(neg (a - b))");
    EXPECT_EQ(tree.node(tree.root()).kind, OpKind::Unary);
}

TEST(ParseTree, RespectsPrecedenceAndAssociativity)
{
    EXPECT_EQ(ParseTree::parse("a+b*c").toString(), "(a + (b * c))");
    EXPECT_EQ(ParseTree::parse("a-b-c").toString(), "((a - b) - c)");
    EXPECT_EQ(ParseTree::parse("a/b/c").toString(), "((a / b) / c)");
    EXPECT_EQ(ParseTree::parse("(a+b)*c").toString(), "((a + b) * c)");
}

TEST(ParseTree, RejectsMalformedInput)
{
    EXPECT_THROW(ParseTree::parse("a +"), FatalError);
    EXPECT_THROW(ParseTree::parse("(a"), FatalError);
    EXPECT_THROW(ParseTree::parse("a b"), FatalError);
    EXPECT_THROW(ParseTree::parse("$"), FatalError);
}

TEST(ParseTree, LevelsMatchDefinition)
{
    ParseTree tree = ParseTree::parse("a*b + (c-d)/e");
    EXPECT_EQ(tree.level(tree.root()), 0);
    const Node &root = tree.node(tree.root());
    EXPECT_EQ(tree.level(root.left), 1);
    EXPECT_EQ(tree.level(root.right), 1);
}

TEST(Traversal, LevelOrderOfThesisExpression)
{
    // Fig 3.1(b): level order visits c, d, a, b, -, e, *, /, + as the
    // queue-machine sequence of Table 3.1 (fetch c, fetch d, fetch a,
    // fetch b, sub, fetch e, mul, div, add).
    ParseTree tree = ParseTree::parse("a*b + (c-d)/e");
    auto seq = labels(tree, levelOrder(tree));
    std::vector<std::string> expected = {"c", "d", "a", "b", "-",
                                         "e", "*", "/", "+"};
    EXPECT_EQ(seq, expected);
}

TEST(Traversal, PostOrderOfThesisExpression)
{
    ParseTree tree = ParseTree::parse("a*b + (c-d)/e");
    auto seq = labels(tree, postOrder(tree));
    std::vector<std::string> expected = {"a", "b", "*", "c", "d",
                                         "-", "e", "/", "+"};
    EXPECT_EQ(seq, expected);
}

TEST(Traversal, SingleNode)
{
    ParseTree tree = ParseTree::parse("a");
    EXPECT_EQ(levelOrder(tree), std::vector<int>{tree.root()});
    EXPECT_EQ(postOrder(tree), std::vector<int>{tree.root()});
}

TEST(Conjugate, MatchesDirectLevelOrderOnThesisExpression)
{
    ParseTree tree = ParseTree::parse("a*b + (c-d)/e");
    EXPECT_EQ(levelOrderViaConjugate(tree), levelOrder(tree));
}

TEST(Conjugate, MatchesDirectLevelOrderExhaustively)
{
    // The thesis lemma: in-order(conjugate(T)) == level-order(T) for all
    // binary trees. Check every tree shape up to 9 nodes.
    for (int n = 1; n <= 9; ++n) {
        forEachTree(n, [&](const ParseTree &tree) {
            ASSERT_EQ(levelOrderViaConjugate(tree), levelOrder(tree))
                << "tree: " << tree.toString();
        });
    }
}

TEST(Conjugate, ConjugateHasAllNodesExactlyOnce)
{
    ParseTree tree = ParseTree::parse("a*b + (c-d)/e - (-f)");
    auto order = levelOrderViaConjugate(tree);
    std::set<int> seen(order.begin(), order.end());
    EXPECT_EQ(static_cast<int>(seen.size()), tree.size());
    EXPECT_EQ(static_cast<int>(order.size()), tree.size());
}

TEST(Enumerate, CountsAreMotzkinNumbers)
{
    // Unary-binary tree shape counts (Motzkin numbers M(n-1)). The
    // thesis Table 3.2 lists slightly different counts above 5 nodes
    // (20 vs 21 at 6 nodes); see EXPERIMENTS.md for the discussion.
    const std::uint64_t expected[] = {1, 1, 2, 4, 9, 21, 51, 127, 323, 835};
    for (int n = 1; n <= 10; ++n)
        EXPECT_EQ(treeCount(n), expected[n - 1]) << "n=" << n;
}

TEST(Enumerate, FourNodeTreesMatchFigure35)
{
    // Fig 3.5 lists the four parse trees with exactly four nodes.
    std::set<std::string> shapes;
    forEachTree(4, [&](const ParseTree &tree) {
        EXPECT_EQ(tree.size(), 4);
        shapes.insert(tree.toString());
    });
    EXPECT_EQ(shapes.size(), 4u);
}

TEST(Enumerate, EveryTreeHasRequestedSize)
{
    for (int n = 1; n <= 8; ++n) {
        forEachTree(n, [&](const ParseTree &tree) {
            ASSERT_EQ(tree.size(), n);
            ASSERT_GE(tree.leafCount(), 1);
        });
    }
}

TEST(Enumerate, LevelOrderIsPermutationForAllTrees)
{
    for (int n = 1; n <= 8; ++n) {
        forEachTree(n, [&](const ParseTree &tree) {
            auto order = levelOrder(tree);
            std::set<int> ids(order.begin(), order.end());
            ASSERT_EQ(static_cast<int>(ids.size()), tree.size());
        });
    }
}

} // namespace
