/**
 * @file
 * Determinism gate for the PDES window scheduler: a run with
 * `hostThreads = N` must be BYTE-IDENTICAL to the sequential core on
 * every observable surface - RunResult fields, the rendered statistics
 * registry, the Chrome trace stream, the full simulated memory image,
 * and the BENCH / metrics JSON documents - for ANY thread count,
 * across both simulation cores, flat and hierarchical topologies, and
 * the same plain / fault / recovery corpora the other differential
 * suites replay (tests/fuzz_corpus.hpp, honoring QM_FUZZ_ITERS).
 *
 * What each suite pins down:
 *  - Plain corpus: real speculation windows (gang rounds, banked
 *    batches, ordered drain) against the sequential event core.
 *  - Checkpoint corpus: fault-free runs with periodic snapshots; the
 *    window end is capped at nextCheckpointAt_, so every snapshot
 *    lands exactly on a window barrier *by construction* and must
 *    capture the same state the sequential core snapshots.
 *  - Fault / recovery / pinned-partitioned corpora: fault-injected
 *    runs take the sequential path by design (runLoop routes them
 *    away from the window scheduler), so bridge-crossing retransmits,
 *    pekill fail-stop + cross-shard migration, and checkpoint replay
 *    land on "window barriers" trivially - the thread count must be
 *    byte-inert, which is exactly what these suites assert.
 *
 * The TSan CI job builds this test with -DQM_TSAN to soak the gang
 * fork/join protocol and the speculation bank under the race detector.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fault/fault.hpp"
#include "fuzz_corpus.hpp"
#include "isa/assembler.hpp"
#include "mp/system.hpp"
#include "occam/codegen.hpp"
#include "occam/compiler.hpp"
#include "occam/ift.hpp"
#include "occam/parser.hpp"
#include "sim/bench_json.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "trace/export.hpp"

namespace {

using namespace qm;
using namespace qm::occam;
using fuzz::corpusPes;
using fuzz::corpusSeed;
using fuzz::fuzzIters;
using fuzz::ProgramGen;

/** The thread counts every corpus is replayed at. */
constexpr int kThreadCounts[] = {1, 2, 4, 8};

/** Everything one run produced that every other run must reproduce. */
struct CoreRun
{
    mp::RunResult result;
    int replays = 0;
    std::string stats;           ///< StatSet::render() of the system.
    std::string trace;           ///< Chrome trace JSON, full stream.
    std::vector<std::uint8_t> memory;
};

isa::ObjectCode
compileCorpusProgram(int idx, std::string *main_label)
{
    ProgramGen gen(corpusSeed(idx));
    std::string source = gen.generate();
    Program ast = parse(source);
    SymbolTable table = analyze(ast);
    Ift ift = Ift::build(ast, table);
    ContextProgram contexts = buildContextGraphs(ast, table, ift);
    *main_label = contexts.mainLabel;
    return isa::assemble(generateAssembly(contexts));
}

CoreRun
runThreaded(const isa::ObjectCode &object,
            const std::string &main_label, mp::SystemConfig config,
            mp::SimCore core, int threads)
{
    config.core = core;
    config.hostThreads = threads;
    // Record the full event stream so the comparison covers trace
    // emission order and timestamps, not just the end state.
    config.traceConfig.enabled = true;
    mp::System system(object, config);
    CoreRun run;
    run.result = system.run(main_label);
    while (!run.result.completed && config.recovery.enabled &&
           system.replayable() && system.canRestore() &&
           run.replays < config.recovery.maxReplays) {
        system.restore();
        ++run.replays;
        run.result = system.resume();
    }
    run.stats = system.stats().render();
    run.trace = trace::chromeTraceJson(system.tracer());
    system.memory().snapshotTo(run.memory);
    return run;
}

void
expectIdentical(const CoreRun &seq, const CoreRun &par)
{
    const mp::RunResult &a = seq.result;
    const mp::RunResult &b = par.result;
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.contexts, b.contexts);
    EXPECT_EQ(a.rendezvous, b.rendezvous);
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.kernelCycles, b.kernelCycles);
    EXPECT_EQ(a.blockedCycles, b.blockedCycles);
    EXPECT_EQ(a.busCycles, b.busCycles);
    EXPECT_EQ(a.watchdogTripped, b.watchdogTripped);
    EXPECT_EQ(a.failureReason, b.failureReason);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.faultRecoveries, b.faultRecoveries);
    EXPECT_EQ(a.traceDropped, b.traceDropped);
    for (std::size_t k = 0; k < a.faultKinds.size(); ++k) {
        EXPECT_EQ(a.faultKinds[k].injected, b.faultKinds[k].injected)
            << "kind bit " << k;
        EXPECT_EQ(a.faultKinds[k].detected, b.faultKinds[k].detected)
            << "kind bit " << k;
        EXPECT_EQ(a.faultKinds[k].recovered, b.faultKinds[k].recovered)
            << "kind bit " << k;
    }
    EXPECT_EQ(seq.replays, par.replays);
    EXPECT_EQ(seq.stats, par.stats);
    EXPECT_EQ(seq.trace, par.trace);
    EXPECT_EQ(seq.memory, par.memory);
}

/** Replay one config at every thread count x both cores. */
void
expectThreadInert(const isa::ObjectCode &object,
                  const std::string &main_label,
                  const mp::SystemConfig &config)
{
    CoreRun baseline = runThreaded(object, main_label, config,
                                   mp::SimCore::Event, /*threads=*/1);
    for (int threads : kThreadCounts) {
        SCOPED_TRACE(testing::Message() << "threads=" << threads);
        expectIdentical(baseline,
                        runThreaded(object, main_label, config,
                                    mp::SimCore::Event, threads));
        // The tick core has no window scheduler; hostThreads must be
        // byte-inert there too (and tick stays identical to event,
        // re-checking the core differential under the new plumbing).
        expectIdentical(baseline,
                        runThreaded(object, main_label, config,
                                    mp::SimCore::Tick, threads));
    }
}

class FuzzPdesPlainTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzPdesPlainTest, PlainCorpusByteIdenticalAtAllThreadCounts)
{
    // Fault-free corpus on the flat ring: the real speculation path -
    // gang rounds over partitioned slots, banked continuation batches,
    // and the ordered window drain.
    std::string main_label;
    isa::ObjectCode object =
        compileCorpusProgram(GetParam(), &main_label);
    mp::SystemConfig config;
    config.numPes = corpusPes(GetParam());
    expectThreadInert(object, main_label, config);
}

INSTANTIATE_TEST_SUITE_P(PlainCorpus, FuzzPdesPlainTest,
                         ::testing::Range(0, fuzzIters(24)));

class FuzzPdesPartitionedTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzPdesPartitionedTest,
       PartitionedCorpusByteIdenticalAtAllThreadCounts)
{
    // Hierarchical machines: worker partitions align with the local
    // rings (one worker owns whole rings when it can), the lookahead
    // is the cross-PE minimum over hops, bridges, and the backbone,
    // and cross-ring traffic must land identically window by window.
    std::string main_label;
    isa::ObjectCode object =
        compileCorpusProgram(GetParam(), &main_label);
    mp::SystemConfig config;
    config.numPes = 8 + 8 * (GetParam() % 2);  // 8 or 16 PEs
    static const mp::RingTopology kShapes[] = {
        {1, 2}, {2, 2}, {4, 1}, {2, 4}};
    config.setTopology(kShapes[GetParam() % 4]);
    expectThreadInert(object, main_label, config);
}

INSTANTIATE_TEST_SUITE_P(PartitionedCorpus, FuzzPdesPartitionedTest,
                         ::testing::Range(0, fuzzIters(12)));

class FuzzPdesCheckpointTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzPdesCheckpointTest,
       CheckpointsLandOnWindowBarriersByConstruction)
{
    // Fault-free runs with aggressive periodic checkpoints, so the
    // threaded scheduler takes real speculation windows AND periodic
    // snapshot() calls. The window end is capped at nextCheckpointAt_,
    // which forces every checkpoint onto a window barrier by
    // construction (speculation banking is also disabled so slot state
    // is window-exact when the snapshot quiesces it); the snapshot the
    // threaded run takes must equal the sequential one bit for bit,
    // which this suite observes through the checkpoint counters in the
    // stats render and through everything downstream of the snapshots.
    std::string main_label;
    isa::ObjectCode object =
        compileCorpusProgram(GetParam(), &main_label);
    mp::SystemConfig config;
    // A hierarchy needs at least one PE per ring, so pad the machine
    // when this index pins the rings:2x2 shape.
    if (GetParam() % 2 == 0) {
        config.numPes = 4 + corpusPes(GetParam());
        config.setTopology({2, 2});
    } else {
        config.numPes = corpusPes(GetParam());
    }
    config.recovery.enabled = true;
    // Smaller than most window spacings, so checkpoints interleave
    // with (and truncate) speculative windows rather than hiding
    // between them.
    config.recovery.checkpointEvery = 64 + 64 * (GetParam() % 3);
    expectThreadInert(object, main_label, config);
}

INSTANTIATE_TEST_SUITE_P(CheckpointCorpus, FuzzPdesCheckpointTest,
                         ::testing::Range(0, fuzzIters(12)));

class FuzzPdesFaultTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzPdesFaultTest, FaultCorpusByteIdenticalAtAllThreadCounts)
{
    // Seeded fault injection: runLoop routes fault-injected runs to
    // the sequential event loop (the injector's decision stream is
    // consumed at sequential sites), so the thread count must be
    // byte-inert - asserted here rather than assumed.
    std::string main_label;
    isa::ObjectCode object =
        compileCorpusProgram(GetParam(), &main_label);
    mp::SystemConfig config;
    config.numPes = corpusPes(GetParam());
    fault::FaultPlan plan;
    plan.seed = 0xFA117 + static_cast<std::uint64_t>(GetParam());
    plan.rate = 0.03;
    plan.kinds = fault::kBusDrop | fault::kBusDelay | fault::kPeStall;
    config.faultPlan = plan;
    config.watchdogCycles = 200'000;
    expectThreadInert(object, main_label, config);
}

INSTANTIATE_TEST_SUITE_P(FaultCorpus, FuzzPdesFaultTest,
                         ::testing::Range(0, fuzzIters(8)));

class FuzzPdesRecoveryTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzPdesRecoveryTest,
       RecoveryCorpusByteIdenticalAtAllThreadCounts)
{
    // The harsh mix: loss past the retry bound, duplication,
    // corruption, periodic fail-stop, recovery on, periodic
    // checkpoints, bounded replay. Snapshot / restore / resume all
    // run under every thread count and must replay identically.
    std::string main_label;
    isa::ObjectCode object =
        compileCorpusProgram(GetParam(), &main_label);
    mp::SystemConfig config;
    config.numPes = corpusPes(GetParam());
    fault::FaultPlan plan;
    plan.seed = 0x5EC0 + static_cast<std::uint64_t>(GetParam());
    plan.rate = 0.25;
    plan.kinds =
        fault::kBusDrop | fault::kBusDup | fault::kCacheCorrupt;
    plan.maxRetries = 1;
    if (GetParam() % 3 == 0) {
        plan.kinds |= fault::kPeKill;
        plan.killAt = 200;
        plan.killPe = GetParam() % 4;
    }
    config.faultPlan = plan;
    config.watchdogCycles = 200'000;
    config.recovery.enabled = true;
    config.recovery.checkpointEvery = 300;
    expectThreadInert(object, main_label, config);
}

INSTANTIATE_TEST_SUITE_P(RecoveryCorpus, FuzzPdesRecoveryTest,
                         ::testing::Range(0, fuzzIters(8)));

class PdesPinnedAdversarialTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PdesPinnedAdversarialTest,
       PartitionedRecoveryCorpusByteIdenticalAtAllThreadCounts)
{
    // The pinned multi-partition recovery corpus: bridge-crossing
    // retransmits, pekill fail-stop with cross-shard re-dispatch, and
    // checkpoint replay on hierarchical machines. Fault-injected runs
    // are defined to take the sequential path, so these adversarial
    // events align with "window barriers" exactly (there are no
    // speculative windows to misalign with) - the assertion is that
    // no thread count can perturb a single byte of them. The
    // fault-free window-barrier coverage for checkpoints lives in
    // FuzzPdesCheckpointTest above, where the window-end cap makes
    // snapshots land on barriers by construction.
    const fuzz::PartitionedRecoverySpec &entry =
        fuzz::kPartitionedRecoveryCorpus[static_cast<std::size_t>(
            GetParam())];
    SCOPED_TRACE(entry.faults);
    std::string main_label;
    isa::ObjectCode object =
        compileCorpusProgram(GetParam(), &main_label);
    mp::SystemConfig config;
    config.numPes = entry.pes;
    config.setTopology({entry.rings, entry.partitions});
    config.faultPlan = fault::parseFaultPlan(entry.faults);
    config.watchdogCycles = 200'000;
    config.recovery.enabled = true;
    config.recovery.checkpointEvery = 300;
    config.recovery.maxResends = 64;
    expectThreadInert(object, main_label, config);
}

INSTANTIATE_TEST_SUITE_P(
    PinnedPartitionedCorpus, PdesPinnedAdversarialTest,
    ::testing::Range(0,
                     static_cast<int>(std::size(
                         fuzz::kPartitionedRecoveryCorpus))));

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(PdesDifferential, BenchAndMetricsJsonByteIdentical)
{
    // The exported documents CI diffing consumes, compared byte for
    // byte between a sequential and a 4-thread sweep. Host timing is
    // measured either way but stays out of the default BENCH document;
    // the host_threads metadata key is likewise only emitted when
    // explicitly requested, so the default documents must be exact.
    std::string source = ProgramGen(corpusSeed(0)).generate();
    occam::CompiledProgram program = occam::compileOccam(source);

    auto series_for = [&](int threads) {
        mp::SystemConfig config;
        config.hostThreads = threads;
        sim::SpeedupSeries series;
        series.name = "corpus0";
        for (int pes : {1, 2, 4, 8})
            series.runs.push_back(
                sim::runOnce(program, "", {}, pes, config));
        return series;
    };
    sim::SpeedupSeries seq = series_for(1);
    sim::SpeedupSeries par = series_for(4);

    for (std::size_t i = 0; i < seq.runs.size(); ++i) {
        EXPECT_EQ(seq.runs[i].cycles, par.runs[i].cycles);
        EXPECT_EQ(seq.runs[i].completed, par.runs[i].completed);
        EXPECT_EQ(seq.runs[i].stats.render(),
                  par.runs[i].stats.render());
        EXPECT_GE(seq.runs[i].hostWallMs, 0.0);
        EXPECT_GE(par.runs[i].hostWallMs, 0.0);
    }

    std::string seq_bench =
        sim::writeBenchJson("pdesdiff", {seq}, "pdes_diff_seq.json");
    std::string par_bench =
        sim::writeBenchJson("pdesdiff", {par}, "pdes_diff_par.json");
    EXPECT_EQ(slurp(seq_bench), slurp(par_bench));
    std::remove(seq_bench.c_str());
    std::remove(par_bench.c_str());

    std::string seq_metrics = sim::writeMetricsJson(
        "pdesdiff", {seq}, "pdes_diff_seq_metrics.json");
    std::string par_metrics = sim::writeMetricsJson(
        "pdesdiff", {par}, "pdes_diff_par_metrics.json");
    EXPECT_EQ(slurp(seq_metrics), slurp(par_metrics));
    std::remove(seq_metrics.c_str());
    std::remove(par_metrics.c_str());
}

TEST(PdesDifferential, HostThreadsMetadataKeyIsOptIn)
{
    // Baseline-comparison hygiene (the --min-thread-speedup gate keys
    // off this): a threaded sweep records host_threads in the BENCH
    // document, a sequential sweep omits the key so historical
    // baselines keep their exact bytes.
    sim::SpeedupSeries series;
    series.name = "meta";
    std::string seq_path = sim::writeBenchJson(
        "pdesmeta", {series}, "pdes_meta_seq.json",
        /*host_time=*/false, /*host_threads=*/1);
    std::string par_path = sim::writeBenchJson(
        "pdesmeta", {series}, "pdes_meta_par.json",
        /*host_time=*/false, /*host_threads=*/4);
    std::string seq_doc = slurp(seq_path);
    std::string par_doc = slurp(par_path);
    EXPECT_EQ(seq_doc.find("host_threads"), std::string::npos);
    EXPECT_NE(par_doc.find("\"host_threads\":4"), std::string::npos);
    std::remove(seq_path.c_str());
    std::remove(par_path.c_str());
}

TEST(PdesDifferential, ThreadCountClampsToMachineSize)
{
    // More workers than PEs degenerates to one slot per worker; far
    // more than that must not crash or change a byte.
    std::string main_label;
    isa::ObjectCode object = compileCorpusProgram(1, &main_label);
    mp::SystemConfig config;
    config.numPes = 2;
    CoreRun baseline = runThreaded(object, main_label, config,
                                   mp::SimCore::Event, 1);
    expectIdentical(baseline,
                    runThreaded(object, main_label, config,
                                mp::SimCore::Event, /*threads=*/64));
}

} // namespace
