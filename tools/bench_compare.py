#!/usr/bin/env python3
"""Compare a BENCH_*.json report against a committed baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json [--tolerance FRAC]
                        [--host-tolerance FRAC] [--min-host-speedup X]
                        [--host-aggregate]

A missing, unreadable, or malformed report file is a one-line
diagnostic and exit 2 (distinct from exit 1 = a real regression), so
CI logs say "the bench never wrote its JSON" rather than dumping a
traceback.

Walks every (series, PE-count) cell present in the baseline and fails
(exit 1) when the current report's cycle count regressed by more than
the tolerance (default 0.10 = 10%), or when a baseline cell is missing
or no longer verified in the current report. Improvements and
within-tolerance drift are reported but pass. The simulator is fully
deterministic, so any drift at all is a real behavior change; the
tolerance only exists to keep intentional small costs (added checks,
instrumentation) from blocking CI.

Host-time cells (host_wall_ms, emitted only under --host-time) are
machine-dependent, so they are gated only when BOTH documents carry
them - i.e. when both were produced on the same machine in the same CI
job. A cell whose host_wall_ms grows past --host-tolerance (default
0.25 = 25%) fails; host cells missing from either side are skipped
silently.

--host-aggregate changes what --host-tolerance gates: instead of each
per-cell time (sub-millisecond on the small sweeps, far below
scheduler noise on a shared runner), it compares the two reports'
TOTAL host_wall_ms summed across every cell. To squeeze the noise
further, BASELINE and CURRENT may each be a comma-separated list of
repeated --host-time reports from the same machine; the gate takes
the minimum total per side (the classic best-of-N timing estimator)
and fails when CURRENT's best total exceeds BASELINE's best by more
than --host-tolerance. Cycle and verification checks still run on
every listed report - repetitions that disagree on cycles fail, since
the simulator is deterministic.

--min-host-speedup X switches to speedup mode: BASELINE and CURRENT
are two --host-time reports from the same machine (e.g. the unit-tick
core vs the event-driven core on one CI runner), and the check is that
CURRENT's aggregate host time at --speedup-pes (default 8) is at least
X times faster than BASELINE's, summed across every series present in
both. Cycle and verification checks still run first - a faster core
that changes results must not pass.

--min-thread-speedup X is the PDES variant of the same gate: BASELINE
is a sequential (--threads 1) --host-time report and CURRENT a
threaded one from the same machine and job. Before aggregating host
times it verifies the host_threads metadata: CURRENT must record
host_threads > 1 and BASELINE must not (the key is emitted only for
threaded sweeps), so a misconfigured job can never "pass" by comparing
two sequential runs or two threaded ones. Cycle checks still run
first - the threaded scheduler is required to be byte-identical, so
pass --tolerance 0 alongside this gate.
"""

import argparse
import json
import sys


class ReportError(Exception):
    """A report file that cannot be compared (missing/unreadable/bad)."""


def load_runs(path):
    """(doc, {(series name, pes): run dict}) from one BENCH_*.json.

    Raises ReportError with a one-line diagnostic instead of letting a
    missing, unreadable, or malformed file escape as a traceback: CI
    calls this on generated artifacts, and "the bench crashed before
    writing its JSON" must read as exactly that, not as a tool bug.
    """
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except OSError as err:
        raise ReportError(f"{path}: cannot read report: "
                          f"{err.strerror or err}") from err
    except json.JSONDecodeError as err:
        raise ReportError(f"{path}: malformed JSON: {err}") from err
    if not isinstance(doc, dict):
        raise ReportError(f"{path}: not a BENCH report "
                          f"(top level is {type(doc).__name__}, "
                          f"expected an object)")
    runs = {}
    for series in doc.get("series", []):
        if not isinstance(series, dict):
            raise ReportError(f"{path}: malformed series entry "
                              f"({type(series).__name__})")
        for run in series.get("runs", []):
            if not isinstance(run, dict):
                raise ReportError(f"{path}: malformed run entry "
                                  f"({type(run).__name__})")
            runs[(series.get("name", "?"), run.get("pes", 0))] = run
    return doc, runs


def total_host_ms(path, runs):
    """Sum of host_wall_ms across every cell of one report.

    Raises ReportError when any cell lacks host timing: an aggregate
    over a partial sweep would silently compare different work.
    """
    total = 0.0
    for (series, pes), cell in sorted(runs.items()):
        ms = cell.get("host_wall_ms")
        if ms is None:
            raise ReportError(f"{path}: {series} @ {pes} PEs has no "
                              f"host_wall_ms (rerun with --host-time)")
        total += ms
    return total


def check_host_aggregate(base_reports, cur_reports, tolerance):
    """Best-of-N aggregate host-overhead gate.

    Each side is a list of (path, runs) repetitions from the same
    machine; the estimator is the minimum total host_wall_ms per side,
    which discards scheduler hiccups instead of averaging them in.
    """
    try:
        base_totals = [(total_host_ms(p, r), p) for p, r in base_reports]
        cur_totals = [(total_host_ms(p, r), p) for p, r in cur_reports]
    except ReportError as err:
        print(f"FAIL: {err}")
        return 1
    for label, totals in (("baseline", base_totals),
                          ("current", cur_totals)):
        for ms, path in totals:
            print(f"note: {label} {path}: total host {ms:.2f}ms")
    base_best = min(base_totals)[0]
    cur_best = min(cur_totals)[0]
    if base_best <= 0:
        print("FAIL: baseline best total host time is zero")
        return 1
    overhead = (cur_best - base_best) / base_best
    summary = (f"best-of-{len(cur_totals)} total host "
               f"{base_best:.2f}ms -> {cur_best:.2f}ms "
               f"({overhead:+.1%}, tolerance {tolerance:.0%})")
    if overhead > tolerance:
        print(f"FAIL: aggregate host overhead: {summary}")
        return 1
    print(f"aggregate host overhead ok: {summary}")
    return 0


def check_host_speedup(base_runs, cur_runs, pes, minimum):
    """Aggregate host-time speedup gate at one PE count.

    Sums host_wall_ms across every series both reports measured at
    `pes` and fails when baseline/current falls below `minimum`.
    """
    base_total = 0.0
    cur_total = 0.0
    cells = 0
    for (series, cell_pes), base in sorted(base_runs.items()):
        if cell_pes != pes:
            continue
        cur = cur_runs.get((series, cell_pes))
        base_ms = base.get("host_wall_ms")
        cur_ms = cur.get("host_wall_ms") if cur else None
        if base_ms is None or cur_ms is None:
            print(f"FAIL: {series} @ {pes} PEs: host_wall_ms missing "
                  f"(rerun both sweeps with --host-time)")
            return 1
        base_total += base_ms
        cur_total += cur_ms
        cells += 1
        per_cell = base_ms / cur_ms if cur_ms > 0 else float("inf")
        print(f"note: {series} @ {pes} PEs: host "
              f"{base_ms:.2f}ms -> {cur_ms:.2f}ms ({per_cell:.2f}x)")
    if cells == 0:
        print(f"FAIL: no cells at {pes} PEs to aggregate")
        return 1
    speedup = base_total / cur_total if cur_total > 0 else float("inf")
    if speedup < minimum:
        print(f"FAIL: aggregate host speedup at {pes} PEs is "
              f"{speedup:.2f}x ({base_total:.2f}ms -> "
              f"{cur_total:.2f}ms), below the {minimum:.2f}x floor")
        return 1
    print(f"aggregate host speedup at {pes} PEs: {speedup:.2f}x "
          f"({base_total:.2f}ms -> {cur_total:.2f}ms) over "
          f"{cells} series, floor {minimum:.2f}x")
    return 0


def check_thread_speedup(base_doc, cur_doc, base_runs, cur_runs, pes,
                         minimum):
    """Threaded-vs-sequential host-time gate at one PE count.

    Refuses to aggregate unless the metadata proves the comparison is
    the intended one: the current report must come from a threaded
    sweep (host_threads > 1, emitted by the bench writers only then)
    and the baseline from a sequential one (key absent). The numeric
    check is then identical to check_host_speedup.
    """
    cur_threads = cur_doc.get("host_threads", 1)
    base_threads = base_doc.get("host_threads", 1)
    if cur_threads <= 1:
        print("FAIL: current report has no host_threads metadata; "
              "rerun the sweep with --threads N (N > 1)")
        return 1
    if base_threads > 1:
        print(f"FAIL: baseline report is itself threaded "
              f"(host_threads={base_threads}); the thread-speedup "
              f"gate needs a --threads 1 baseline")
        return 1
    print(f"note: thread-speedup gate: sequential baseline vs "
          f"host_threads={cur_threads} current")
    return check_host_speedup(base_runs, cur_runs, pes, minimum)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max allowed fractional cycle regression "
                             "(default 0.10)")
    parser.add_argument("--host-tolerance", type=float, default=0.25,
                        help="max allowed fractional host_wall_ms "
                             "regression when both reports carry it "
                             "(default 0.25)")
    parser.add_argument("--host-aggregate", action="store_true",
                        help="gate --host-tolerance on the best-of-N "
                             "TOTAL host_wall_ms instead of per-cell "
                             "times; BASELINE and CURRENT may each be "
                             "a comma-separated list of repeated "
                             "reports (minimum total per side wins)")
    parser.add_argument("--min-host-speedup", type=float, default=None,
                        metavar="X",
                        help="speedup mode: require CURRENT's aggregate "
                             "host time at --speedup-pes to beat "
                             "BASELINE's by at least X times")
    parser.add_argument("--min-thread-speedup", type=float,
                        default=None, metavar="X",
                        help="threaded speedup mode: BASELINE is a "
                             "sequential --host-time report, CURRENT "
                             "a threaded one; require the aggregate "
                             "host speedup at --speedup-pes to be at "
                             "least X (metadata-checked)")
    parser.add_argument("--speedup-pes", type=int, default=8,
                        help="PE count the speedup gate aggregates "
                             "over (default 8)")
    args = parser.parse_args()

    # In aggregate mode each positional may list repeated reports; the
    # first of each side anchors the cycle checks, and later ones are
    # only admitted if their cycles agree (determinism cross-check).
    base_paths = args.baseline.split(",") if args.host_aggregate \
        else [args.baseline]
    cur_paths = args.current.split(",") if args.host_aggregate \
        else [args.current]
    try:
        base_reports = [(p, load_runs(p)) for p in base_paths]
        cur_reports = [(p, load_runs(p)) for p in cur_paths]
    except ReportError as err:
        print(f"bench_compare: {err}", file=sys.stderr)
        return 2
    base_doc, base_runs = base_reports[0][1]
    cur_doc, cur_runs = cur_reports[0][1]
    base_name = base_doc.get("bench", "?")
    cur_name = cur_doc.get("bench", "?")
    if base_name != cur_name:
        print(f"FAIL: comparing different benches "
              f"('{base_name}' vs '{cur_name}')")
        return 1

    failures = 0
    for side_runs, reps in ((base_runs, base_reports[1:]),
                            (cur_runs, cur_reports[1:])):
        for path, (_, rep_runs) in reps:
            for key, run in sorted(side_runs.items()):
                other = rep_runs.get(key)
                if other is None or \
                        other.get("cycles") != run.get("cycles"):
                    series, pes = key
                    print(f"FAIL: {path}: {series} @ {pes} PEs "
                          f"disagrees with its first repetition "
                          f"(nondeterministic sweep?)")
                    failures += 1
    for key in sorted(base_runs):
        series, pes = key
        base = base_runs[key]
        cell = f"{series} @ {pes} PEs"
        cur = cur_runs.get(key)
        if cur is None:
            print(f"FAIL: {cell}: missing from current report")
            failures += 1
            continue
        if not cur.get("verified", False):
            print(f"FAIL: {cell}: run no longer verifies")
            failures += 1
            continue
        base_cycles = base.get("cycles", 0)
        cur_cycles = cur.get("cycles", 0)
        if base_cycles <= 0:
            continue
        delta = (cur_cycles - base_cycles) / base_cycles
        if delta > args.tolerance:
            print(f"FAIL: {cell}: cycles {base_cycles} -> {cur_cycles} "
                  f"(+{delta:.1%} > {args.tolerance:.0%} tolerance)")
            failures += 1
        elif delta != 0:
            word = "slower" if delta > 0 else "faster"
            print(f"note: {cell}: cycles {base_cycles} -> {cur_cycles} "
                  f"({abs(delta):.1%} {word})")
        else:
            print(f"ok:   {cell}: {cur_cycles} cycles (unchanged)")
        # Host time is gated only when both sides measured it; a
        # committed (machine-independent) baseline never carries it.
        # Aggregate mode gates the totals instead - per-cell times on
        # the small sweeps are sub-millisecond, below runner noise.
        base_ms = base.get("host_wall_ms")
        cur_ms = cur.get("host_wall_ms")
        if not args.host_aggregate and \
                base_ms is not None and cur_ms is not None and \
                base_ms > 0:
            host_delta = (cur_ms - base_ms) / base_ms
            if host_delta > args.host_tolerance:
                print(f"FAIL: {cell}: host {base_ms:.2f}ms -> "
                      f"{cur_ms:.2f}ms (+{host_delta:.1%} > "
                      f"{args.host_tolerance:.0%} host tolerance)")
                failures += 1

    extra = sorted(set(cur_runs) - set(base_runs))
    for series, pes in extra:
        print(f"note: {series} @ {pes} PEs: new cell, no baseline")

    if failures:
        print(f"{failures} cell(s) regressed past tolerance; "
              f"if intentional, refresh the baseline "
              f"(tools/baselines/) in the same change")
        return 1
    print(f"all {len(base_runs)} baseline cells within tolerance")

    if args.host_aggregate:
        return check_host_aggregate(
            [(p, runs) for p, (_, runs) in base_reports],
            [(p, runs) for p, (_, runs) in cur_reports],
            args.host_tolerance)
    if args.min_host_speedup is not None:
        return check_host_speedup(base_runs, cur_runs,
                                  args.speedup_pes,
                                  args.min_host_speedup)
    if args.min_thread_speedup is not None:
        return check_thread_speedup(base_doc, cur_doc,
                                    base_runs, cur_runs,
                                    args.speedup_pes,
                                    args.min_thread_speedup)
    return 0


if __name__ == "__main__":
    sys.exit(main())
