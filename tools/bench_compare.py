#!/usr/bin/env python3
"""Compare a BENCH_*.json report against a committed baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json [--tolerance FRAC]

Walks every (series, PE-count) cell present in the baseline and fails
(exit 1) when the current report's cycle count regressed by more than
the tolerance (default 0.10 = 10%), or when a baseline cell is missing
or no longer verified in the current report. Improvements and
within-tolerance drift are reported but pass. The simulator is fully
deterministic, so any drift at all is a real behavior change; the
tolerance only exists to keep intentional small costs (added checks,
instrumentation) from blocking CI.
"""

import argparse
import json
import sys


def load_runs(path):
    """{(series name, pes): run dict} from one BENCH_*.json report."""
    with open(path) as handle:
        doc = json.load(handle)
    runs = {}
    for series in doc.get("series", []):
        for run in series.get("runs", []):
            runs[(series.get("name", "?"), run.get("pes", 0))] = run
    return doc.get("bench", "?"), runs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max allowed fractional cycle regression "
                             "(default 0.10)")
    args = parser.parse_args()

    base_name, base_runs = load_runs(args.baseline)
    cur_name, cur_runs = load_runs(args.current)
    if base_name != cur_name:
        print(f"FAIL: comparing different benches "
              f"('{base_name}' vs '{cur_name}')")
        return 1

    failures = 0
    for key in sorted(base_runs):
        series, pes = key
        base = base_runs[key]
        cell = f"{series} @ {pes} PEs"
        cur = cur_runs.get(key)
        if cur is None:
            print(f"FAIL: {cell}: missing from current report")
            failures += 1
            continue
        if not cur.get("verified", False):
            print(f"FAIL: {cell}: run no longer verifies")
            failures += 1
            continue
        base_cycles = base.get("cycles", 0)
        cur_cycles = cur.get("cycles", 0)
        if base_cycles <= 0:
            continue
        delta = (cur_cycles - base_cycles) / base_cycles
        if delta > args.tolerance:
            print(f"FAIL: {cell}: cycles {base_cycles} -> {cur_cycles} "
                  f"(+{delta:.1%} > {args.tolerance:.0%} tolerance)")
            failures += 1
        elif delta != 0:
            word = "slower" if delta > 0 else "faster"
            print(f"note: {cell}: cycles {base_cycles} -> {cur_cycles} "
                  f"({abs(delta):.1%} {word})")
        else:
            print(f"ok:   {cell}: {cur_cycles} cycles (unchanged)")

    extra = sorted(set(cur_runs) - set(base_runs))
    for series, pes in extra:
        print(f"note: {series} @ {pes} PEs: new cell, no baseline")

    if failures:
        print(f"{failures} cell(s) regressed past tolerance; "
              f"if intentional, refresh the baseline "
              f"(tools/baselines/) in the same change")
        return 1
    print(f"all {len(base_runs)} baseline cells within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
