#!/usr/bin/env python3
"""Crash-injection harness for the durability layer.

Three attack modes, all seeded and reproducible:

  run    kill -9 an `occamc --checkpoint-file` run at a randomized
         point, then `--resume` from whatever checkpoint survived and
         require stdout byte-identical to an uninterrupted reference.
         A landed kill that left a checkpoint must also leave the
         flight recorder's parseable qm.flight.v1 black box beside it.
  sweep  kill -9 a journaled bench (`--resume-dir`) mid-sweep, re-run
         with the same journal dir, and require both the final stdout
         and the BENCH_*.json byte-identical to an uninterrupted run.
         Any *.flight.json the sweep dropped in the journal dir must
         parse as qm.flight.v1, and a kill that landed after sweep
         progress must have left at least one.
  fuzz   mutate a valid checkpoint (random bit flips, truncations,
         random-garbage splices) and require every mutant to be
         refused cleanly: occamc must diagnose on stderr, fall back to
         a cold start, and still produce the reference stdout.

A kill that lands after the process already exited counts as a
"no-kill" trial - the resume path is still exercised (journal/
checkpoint replay of a complete run), so trials are never wasted.

Exit 0 when every trial holds the byte-identity/rejection invariant,
1 otherwise.

Examples:
  crash_harness.py run   --occamc build/examples/occamc --trials 5
  crash_harness.py sweep --bench build/bench/bench_ch5_bus --trials 3
  crash_harness.py fuzz  --occamc build/examples/occamc --mutants 40
"""

import argparse
import glob
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time

PIPELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "..", "examples", "pipeline.occ")

failures = 0


def report(name, ok, detail=""):
    global failures
    print(("ok: " if ok else "FAIL: ") + name +
          (f" ({detail})" if detail and not ok else ""), flush=True)
    if not ok:
        failures += 1


def run(cmd, cwd=None):
    return subprocess.run(cmd, capture_output=True, text=True, cwd=cwd)


def kill_after(cmd, delay, cwd=None):
    """Start cmd, SIGKILL it after delay seconds; True if it was killed."""
    proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL, cwd=cwd)
    try:
        proc.wait(timeout=delay)
        return False  # finished before the kill landed
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        return True


def flight_dumps(directory):
    """(paths, all_parse) for every *.flight.json under directory."""
    paths = sorted(glob.glob(os.path.join(directory, "*.flight.json")))
    all_parse = True
    for path in paths:
        try:
            with open(path) as f:
                if json.load(f).get("schema") != "qm.flight.v1":
                    all_parse = False
        except (OSError, ValueError):
            all_parse = False
    return paths, all_parse


def occamc_cmd(args, extra):
    return [args.occamc, "--run", "--pes", "4", "--recover",
            "--checkpoint-every", "150", "--stats"] + extra + [PIPELINE]


def mode_run(args, rng):
    started = time.monotonic()
    ref = run(occamc_cmd(args, []))
    ref_secs = time.monotonic() - started
    report("reference run succeeds", ref.returncode == 0,
           f"rc={ref.returncode}")
    kills = 0
    for trial in range(args.trials):
        tmp = tempfile.mkdtemp(prefix="crash_run_")
        ckpt = os.path.join(tmp, "run.qmc")
        delay = rng.uniform(0.05, 0.9) * max(ref_secs, 0.01)
        killed = kill_after(occamc_cmd(args, ["--checkpoint-file",
                                              ckpt]), delay)
        kills += killed
        # kill -9 is uncatchable, so the only black box is the one the
        # checkpoint boundary persisted: if a checkpoint survived the
        # kill, the flight dump next to it must too, and must parse.
        if killed and os.path.exists(ckpt):
            dumps, all_parse = flight_dumps(tmp)
            report(f"trial {trial}: flight dump survives the kill",
                   all_parse and ckpt + ".flight.json" in dumps,
                   f"dumps={dumps}")
        # Resume from whatever survived; a missing/partial checkpoint
        # must degrade to a cold start, never to different output.
        resume = run(occamc_cmd(args, ["--resume", ckpt]))
        report(f"trial {trial}: resume after "
               f"{'kill@%.0fms' % (delay * 1e3) if killed else 'no-kill'}"
               " is byte-identical",
               resume.returncode == 0 and resume.stdout == ref.stdout,
               f"rc={resume.returncode}")
        shutil.rmtree(tmp, ignore_errors=True)
    print(f"run mode: {kills}/{args.trials} trials landed the kill")


def bench_cmd(args, resume_dir):
    cmd = [args.bench, "--jobs", "2"]
    if args.bench_args:
        cmd += args.bench_args.split()
    if resume_dir:
        cmd += ["--resume-dir", resume_dir]
    return cmd


def read_bench_outputs(cwd):
    docs = {}
    for path in sorted(glob.glob(os.path.join(cwd, "BENCH_*.json"))):
        with open(path, "rb") as f:
            docs[os.path.basename(path)] = f.read()
    return docs


def mode_sweep(args, rng):
    ref_dir = tempfile.mkdtemp(prefix="crash_ref_")
    started = time.monotonic()
    ref = run(bench_cmd(args, ""), cwd=ref_dir)
    ref_secs = time.monotonic() - started
    report("reference sweep succeeds", ref.returncode == 0,
           f"rc={ref.returncode}")
    ref_json = read_bench_outputs(ref_dir)
    report("reference sweep wrote BENCH json", bool(ref_json))
    kills = 0
    for trial in range(args.trials):
        tmp = tempfile.mkdtemp(prefix="crash_sweep_")
        journal = os.path.join(tmp, "journal")
        os.mkdir(journal)
        # Sample the kill inside the measured sweep duration so it
        # actually lands mid-sweep on any machine speed (ASan CI runs
        # are ~10x slower than a release laptop).
        delay = rng.uniform(0.05, 0.9) * max(ref_secs, 0.01)
        killed = kill_after(bench_cmd(args, journal), delay, cwd=tmp)
        kills += killed
        # Every run the sweep started dropped a qm.flight.v1 marker in
        # the journal dir before executing (atomic write, so a kill
        # can never leave a partial one). If the kill landed after any
        # sweep progress, at least one must be there, and every one
        # present must parse.
        if killed:
            dumps, all_parse = flight_dumps(journal)
            progressed = bool(os.listdir(journal))
            report(f"trial {trial}: journal flight dumps parse",
                   all_parse and (dumps or not progressed),
                   f"dumps={len(dumps)} progressed={progressed}")
        done = run(bench_cmd(args, journal), cwd=tmp)
        label = (f"kill@{delay * 1e3:.0f}ms" if killed else "no-kill")
        report(f"trial {trial}: post-{label} rerun exits 0",
               done.returncode == 0, f"rc={done.returncode}")
        report(f"trial {trial}: stdout byte-identical",
               done.stdout == ref.stdout)
        report(f"trial {trial}: BENCH json byte-identical",
               read_bench_outputs(tmp) == ref_json)
        shutil.rmtree(tmp, ignore_errors=True)
    print(f"sweep mode: {kills}/{args.trials} trials landed the kill")


def mode_fuzz(args, rng):
    tmp = tempfile.mkdtemp(prefix="crash_fuzz_")
    ckpt = os.path.join(tmp, "seed.qmc")
    ref = run(occamc_cmd(args, ["--checkpoint-file", ckpt]))
    report("seed checkpoint run succeeds", ref.returncode == 0,
           f"rc={ref.returncode}")
    with open(ckpt, "rb") as f:
        seed = f.read()
    report("seed checkpoint non-trivial", len(seed) > 64,
           f"{len(seed)} bytes")
    rejected = 0
    for i in range(args.mutants):
        img = bytearray(seed)
        kind = rng.randrange(3)
        if kind == 0:  # bit flips
            for _ in range(rng.randrange(1, 4)):
                pos = rng.randrange(len(img))
                img[pos] ^= 1 << rng.randrange(8)
        elif kind == 1:  # truncation (possibly to nothing)
            img = img[:rng.randrange(len(img))]
        else:  # splice random garbage over a span
            start = rng.randrange(len(img))
            span = rng.randrange(1, 64)
            for j in range(start, min(start + span, len(img))):
                img[j] = rng.randrange(256)
        mutant = os.path.join(tmp, f"mutant_{i}.qmc")
        with open(mutant, "wb") as f:
            f.write(bytes(img))
        p = run(occamc_cmd(args, ["--resume", mutant]))
        # A mutant may survive by accident (flip in a dead byte that
        # the CRC covers is impossible, but e.g. truncation at the
        # exact container end is the original); either way the output
        # contract is absolute: exit 0 and the reference stdout.
        report(f"mutant {i} ({['flip', 'trunc', 'splice'][kind]}): "
               "clean outcome",
               p.returncode == 0 and p.stdout == ref.stdout,
               f"rc={p.returncode}")
        if "cannot resume" in p.stderr:
            rejected += 1
        os.remove(mutant)
    report("fuzzer reached the rejection path",
           rejected > args.mutants // 2,
           f"only {rejected}/{args.mutants} mutants rejected")
    print(f"fuzz mode: {rejected}/{args.mutants} mutants rejected, "
          "rest were no-op mutations")
    shutil.rmtree(tmp, ignore_errors=True)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("mode", choices=["run", "sweep", "fuzz"])
    parser.add_argument("--occamc", default="build/examples/occamc")
    parser.add_argument("--bench", default="build/bench/bench_ch5_bus")
    parser.add_argument("--bench-args", default="",
                        help="extra flags passed to the bench binary")
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--mutants", type=int, default=40)
    parser.add_argument("--seed", type=int, default=1985)
    args = parser.parse_args()
    # Bench trials run in per-trial temp cwds (BENCH_*.json lands in
    # the cwd), so binary paths must survive the chdir.
    args.occamc = os.path.abspath(args.occamc)
    args.bench = os.path.abspath(args.bench)
    rng = random.Random(args.seed)

    {"run": mode_run, "sweep": mode_sweep, "fuzz": mode_fuzz}[
        args.mode](args, rng)

    if failures:
        print(f"{failures} invariant violation(s)")
        return 1
    print("crash harness: all invariants held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
