file(REMOVE_RECURSE
  "CMakeFiles/bench_ch6_speedup.dir/bench_ch6_speedup.cpp.o"
  "CMakeFiles/bench_ch6_speedup.dir/bench_ch6_speedup.cpp.o.d"
  "bench_ch6_speedup"
  "bench_ch6_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ch6_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
