# Empty compiler generated dependencies file for bench_ch6_amdahl.
# This may be replaced when dependencies are built.
