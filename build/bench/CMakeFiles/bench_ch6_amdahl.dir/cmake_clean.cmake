file(REMOVE_RECURSE
  "CMakeFiles/bench_ch6_amdahl.dir/bench_ch6_amdahl.cpp.o"
  "CMakeFiles/bench_ch6_amdahl.dir/bench_ch6_amdahl.cpp.o.d"
  "bench_ch6_amdahl"
  "bench_ch6_amdahl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ch6_amdahl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
