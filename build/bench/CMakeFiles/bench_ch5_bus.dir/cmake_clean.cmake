file(REMOVE_RECURSE
  "CMakeFiles/bench_ch5_bus.dir/bench_ch5_bus.cpp.o"
  "CMakeFiles/bench_ch5_bus.dir/bench_ch5_bus.cpp.o.d"
  "bench_ch5_bus"
  "bench_ch5_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ch5_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
