# Empty compiler generated dependencies file for bench_ch5_bus.
# This may be replaced when dependencies are built.
