# Empty compiler generated dependencies file for bench_ch5_msgproc.
# This may be replaced when dependencies are built.
