file(REMOVE_RECURSE
  "CMakeFiles/bench_ch5_msgproc.dir/bench_ch5_msgproc.cpp.o"
  "CMakeFiles/bench_ch5_msgproc.dir/bench_ch5_msgproc.cpp.o.d"
  "bench_ch5_msgproc"
  "bench_ch5_msgproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ch5_msgproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
