file(REMOVE_RECURSE
  "CMakeFiles/bench_ch3_sequences.dir/bench_ch3_sequences.cpp.o"
  "CMakeFiles/bench_ch3_sequences.dir/bench_ch3_sequences.cpp.o.d"
  "bench_ch3_sequences"
  "bench_ch3_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ch3_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
