# Empty compiler generated dependencies file for bench_ch3_sequences.
# This may be replaced when dependencies are built.
