# Empty dependencies file for bench_ch4_inputseq.
# This may be replaced when dependencies are built.
