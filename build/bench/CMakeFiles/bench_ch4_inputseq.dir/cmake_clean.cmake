file(REMOVE_RECURSE
  "CMakeFiles/bench_ch4_inputseq.dir/bench_ch4_inputseq.cpp.o"
  "CMakeFiles/bench_ch4_inputseq.dir/bench_ch4_inputseq.cpp.o.d"
  "bench_ch4_inputseq"
  "bench_ch4_inputseq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ch4_inputseq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
