file(REMOVE_RECURSE
  "CMakeFiles/bench_ch3_pipeline.dir/bench_ch3_pipeline.cpp.o"
  "CMakeFiles/bench_ch3_pipeline.dir/bench_ch3_pipeline.cpp.o.d"
  "bench_ch3_pipeline"
  "bench_ch3_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ch3_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
