# Empty compiler generated dependencies file for bench_ch3_pipeline.
# This may be replaced when dependencies are built.
