# Empty compiler generated dependencies file for bench_ch3_indexed.
# This may be replaced when dependencies are built.
