file(REMOVE_RECURSE
  "CMakeFiles/bench_ch3_indexed.dir/bench_ch3_indexed.cpp.o"
  "CMakeFiles/bench_ch3_indexed.dir/bench_ch3_indexed.cpp.o.d"
  "bench_ch3_indexed"
  "bench_ch3_indexed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ch3_indexed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
