# Empty compiler generated dependencies file for von_neumann.
# This may be replaced when dependencies are built.
