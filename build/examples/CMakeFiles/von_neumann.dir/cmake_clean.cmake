file(REMOVE_RECURSE
  "CMakeFiles/von_neumann.dir/von_neumann.cpp.o"
  "CMakeFiles/von_neumann.dir/von_neumann.cpp.o.d"
  "von_neumann"
  "von_neumann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/von_neumann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
