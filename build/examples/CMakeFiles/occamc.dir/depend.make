# Empty dependencies file for occamc.
# This may be replaced when dependencies are built.
