file(REMOVE_RECURSE
  "CMakeFiles/occamc.dir/occamc.cpp.o"
  "CMakeFiles/occamc.dir/occamc.cpp.o.d"
  "occamc"
  "occamc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occamc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
