file(REMOVE_RECURSE
  "libqm_occam.a"
)
