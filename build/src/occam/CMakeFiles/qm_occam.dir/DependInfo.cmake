
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/occam/ast.cpp" "src/occam/CMakeFiles/qm_occam.dir/ast.cpp.o" "gcc" "src/occam/CMakeFiles/qm_occam.dir/ast.cpp.o.d"
  "/root/repo/src/occam/codegen.cpp" "src/occam/CMakeFiles/qm_occam.dir/codegen.cpp.o" "gcc" "src/occam/CMakeFiles/qm_occam.dir/codegen.cpp.o.d"
  "/root/repo/src/occam/compiler.cpp" "src/occam/CMakeFiles/qm_occam.dir/compiler.cpp.o" "gcc" "src/occam/CMakeFiles/qm_occam.dir/compiler.cpp.o.d"
  "/root/repo/src/occam/graph_builder.cpp" "src/occam/CMakeFiles/qm_occam.dir/graph_builder.cpp.o" "gcc" "src/occam/CMakeFiles/qm_occam.dir/graph_builder.cpp.o.d"
  "/root/repo/src/occam/graph_interp.cpp" "src/occam/CMakeFiles/qm_occam.dir/graph_interp.cpp.o" "gcc" "src/occam/CMakeFiles/qm_occam.dir/graph_interp.cpp.o.d"
  "/root/repo/src/occam/ift.cpp" "src/occam/CMakeFiles/qm_occam.dir/ift.cpp.o" "gcc" "src/occam/CMakeFiles/qm_occam.dir/ift.cpp.o.d"
  "/root/repo/src/occam/lexer.cpp" "src/occam/CMakeFiles/qm_occam.dir/lexer.cpp.o" "gcc" "src/occam/CMakeFiles/qm_occam.dir/lexer.cpp.o.d"
  "/root/repo/src/occam/parser.cpp" "src/occam/CMakeFiles/qm_occam.dir/parser.cpp.o" "gcc" "src/occam/CMakeFiles/qm_occam.dir/parser.cpp.o.d"
  "/root/repo/src/occam/sema.cpp" "src/occam/CMakeFiles/qm_occam.dir/sema.cpp.o" "gcc" "src/occam/CMakeFiles/qm_occam.dir/sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/qm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/qm_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/qm_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
