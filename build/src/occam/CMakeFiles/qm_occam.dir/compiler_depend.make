# Empty compiler generated dependencies file for qm_occam.
# This may be replaced when dependencies are built.
