file(REMOVE_RECURSE
  "CMakeFiles/qm_occam.dir/ast.cpp.o"
  "CMakeFiles/qm_occam.dir/ast.cpp.o.d"
  "CMakeFiles/qm_occam.dir/codegen.cpp.o"
  "CMakeFiles/qm_occam.dir/codegen.cpp.o.d"
  "CMakeFiles/qm_occam.dir/compiler.cpp.o"
  "CMakeFiles/qm_occam.dir/compiler.cpp.o.d"
  "CMakeFiles/qm_occam.dir/graph_builder.cpp.o"
  "CMakeFiles/qm_occam.dir/graph_builder.cpp.o.d"
  "CMakeFiles/qm_occam.dir/graph_interp.cpp.o"
  "CMakeFiles/qm_occam.dir/graph_interp.cpp.o.d"
  "CMakeFiles/qm_occam.dir/ift.cpp.o"
  "CMakeFiles/qm_occam.dir/ift.cpp.o.d"
  "CMakeFiles/qm_occam.dir/lexer.cpp.o"
  "CMakeFiles/qm_occam.dir/lexer.cpp.o.d"
  "CMakeFiles/qm_occam.dir/parser.cpp.o"
  "CMakeFiles/qm_occam.dir/parser.cpp.o.d"
  "CMakeFiles/qm_occam.dir/sema.cpp.o"
  "CMakeFiles/qm_occam.dir/sema.cpp.o.d"
  "libqm_occam.a"
  "libqm_occam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qm_occam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
