file(REMOVE_RECURSE
  "CMakeFiles/qm_pe.dir/memory.cpp.o"
  "CMakeFiles/qm_pe.dir/memory.cpp.o.d"
  "CMakeFiles/qm_pe.dir/pe.cpp.o"
  "CMakeFiles/qm_pe.dir/pe.cpp.o.d"
  "libqm_pe.a"
  "libqm_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qm_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
