file(REMOVE_RECURSE
  "libqm_pe.a"
)
