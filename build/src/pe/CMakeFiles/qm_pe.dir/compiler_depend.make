# Empty compiler generated dependencies file for qm_pe.
# This may be replaced when dependencies are built.
