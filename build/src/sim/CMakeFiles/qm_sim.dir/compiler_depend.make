# Empty compiler generated dependencies file for qm_sim.
# This may be replaced when dependencies are built.
