file(REMOVE_RECURSE
  "CMakeFiles/qm_sim.dir/amdahl.cpp.o"
  "CMakeFiles/qm_sim.dir/amdahl.cpp.o.d"
  "CMakeFiles/qm_sim.dir/experiment.cpp.o"
  "CMakeFiles/qm_sim.dir/experiment.cpp.o.d"
  "libqm_sim.a"
  "libqm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
