# Empty dependencies file for qm_sim.
# This may be replaced when dependencies are built.
