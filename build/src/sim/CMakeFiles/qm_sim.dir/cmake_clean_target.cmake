file(REMOVE_RECURSE
  "libqm_sim.a"
)
