
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfg/graph.cpp" "src/dfg/CMakeFiles/qm_dfg.dir/graph.cpp.o" "gcc" "src/dfg/CMakeFiles/qm_dfg.dir/graph.cpp.o.d"
  "/root/repo/src/dfg/iqm.cpp" "src/dfg/CMakeFiles/qm_dfg.dir/iqm.cpp.o" "gcc" "src/dfg/CMakeFiles/qm_dfg.dir/iqm.cpp.o.d"
  "/root/repo/src/dfg/scheduler.cpp" "src/dfg/CMakeFiles/qm_dfg.dir/scheduler.cpp.o" "gcc" "src/dfg/CMakeFiles/qm_dfg.dir/scheduler.cpp.o.d"
  "/root/repo/src/dfg/sequencing.cpp" "src/dfg/CMakeFiles/qm_dfg.dir/sequencing.cpp.o" "gcc" "src/dfg/CMakeFiles/qm_dfg.dir/sequencing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/qm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
