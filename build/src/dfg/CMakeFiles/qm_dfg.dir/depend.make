# Empty dependencies file for qm_dfg.
# This may be replaced when dependencies are built.
