file(REMOVE_RECURSE
  "CMakeFiles/qm_dfg.dir/graph.cpp.o"
  "CMakeFiles/qm_dfg.dir/graph.cpp.o.d"
  "CMakeFiles/qm_dfg.dir/iqm.cpp.o"
  "CMakeFiles/qm_dfg.dir/iqm.cpp.o.d"
  "CMakeFiles/qm_dfg.dir/scheduler.cpp.o"
  "CMakeFiles/qm_dfg.dir/scheduler.cpp.o.d"
  "CMakeFiles/qm_dfg.dir/sequencing.cpp.o"
  "CMakeFiles/qm_dfg.dir/sequencing.cpp.o.d"
  "libqm_dfg.a"
  "libqm_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qm_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
