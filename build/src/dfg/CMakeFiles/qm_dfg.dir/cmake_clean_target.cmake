file(REMOVE_RECURSE
  "libqm_dfg.a"
)
