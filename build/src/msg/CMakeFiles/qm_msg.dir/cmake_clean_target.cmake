file(REMOVE_RECURSE
  "libqm_msg.a"
)
