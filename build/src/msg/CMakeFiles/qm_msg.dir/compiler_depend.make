# Empty compiler generated dependencies file for qm_msg.
# This may be replaced when dependencies are built.
