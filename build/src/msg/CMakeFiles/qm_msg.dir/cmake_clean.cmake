file(REMOVE_RECURSE
  "CMakeFiles/qm_msg.dir/message_cache.cpp.o"
  "CMakeFiles/qm_msg.dir/message_cache.cpp.o.d"
  "libqm_msg.a"
  "libqm_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qm_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
