file(REMOVE_RECURSE
  "libqm_mp.a"
)
