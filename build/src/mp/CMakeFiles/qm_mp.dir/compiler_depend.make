# Empty compiler generated dependencies file for qm_mp.
# This may be replaced when dependencies are built.
