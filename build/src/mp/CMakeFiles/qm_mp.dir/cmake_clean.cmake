file(REMOVE_RECURSE
  "CMakeFiles/qm_mp.dir/ring_bus.cpp.o"
  "CMakeFiles/qm_mp.dir/ring_bus.cpp.o.d"
  "CMakeFiles/qm_mp.dir/system.cpp.o"
  "CMakeFiles/qm_mp.dir/system.cpp.o.d"
  "libqm_mp.a"
  "libqm_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qm_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
