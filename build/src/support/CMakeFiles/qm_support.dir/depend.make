# Empty dependencies file for qm_support.
# This may be replaced when dependencies are built.
