file(REMOVE_RECURSE
  "CMakeFiles/qm_support.dir/diagnostics.cpp.o"
  "CMakeFiles/qm_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/qm_support.dir/stats.cpp.o"
  "CMakeFiles/qm_support.dir/stats.cpp.o.d"
  "CMakeFiles/qm_support.dir/table.cpp.o"
  "CMakeFiles/qm_support.dir/table.cpp.o.d"
  "libqm_support.a"
  "libqm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
