file(REMOVE_RECURSE
  "libqm_support.a"
)
