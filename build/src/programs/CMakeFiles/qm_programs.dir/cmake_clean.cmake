file(REMOVE_RECURSE
  "CMakeFiles/qm_programs.dir/benchmarks.cpp.o"
  "CMakeFiles/qm_programs.dir/benchmarks.cpp.o.d"
  "libqm_programs.a"
  "libqm_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qm_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
