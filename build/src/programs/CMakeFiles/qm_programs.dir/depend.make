# Empty dependencies file for qm_programs.
# This may be replaced when dependencies are built.
