file(REMOVE_RECURSE
  "libqm_programs.a"
)
