# Empty dependencies file for qm_isa.
# This may be replaced when dependencies are built.
