file(REMOVE_RECURSE
  "CMakeFiles/qm_isa.dir/assembler.cpp.o"
  "CMakeFiles/qm_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/qm_isa.dir/instruction.cpp.o"
  "CMakeFiles/qm_isa.dir/instruction.cpp.o.d"
  "libqm_isa.a"
  "libqm_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qm_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
