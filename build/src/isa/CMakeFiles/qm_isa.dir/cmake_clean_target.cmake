file(REMOVE_RECURSE
  "libqm_isa.a"
)
