file(REMOVE_RECURSE
  "CMakeFiles/qm_expr.dir/conjugate.cpp.o"
  "CMakeFiles/qm_expr.dir/conjugate.cpp.o.d"
  "CMakeFiles/qm_expr.dir/enumerate.cpp.o"
  "CMakeFiles/qm_expr.dir/enumerate.cpp.o.d"
  "CMakeFiles/qm_expr.dir/eval.cpp.o"
  "CMakeFiles/qm_expr.dir/eval.cpp.o.d"
  "CMakeFiles/qm_expr.dir/parse_tree.cpp.o"
  "CMakeFiles/qm_expr.dir/parse_tree.cpp.o.d"
  "CMakeFiles/qm_expr.dir/pipeline_model.cpp.o"
  "CMakeFiles/qm_expr.dir/pipeline_model.cpp.o.d"
  "CMakeFiles/qm_expr.dir/traversal.cpp.o"
  "CMakeFiles/qm_expr.dir/traversal.cpp.o.d"
  "libqm_expr.a"
  "libqm_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qm_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
