
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/conjugate.cpp" "src/expr/CMakeFiles/qm_expr.dir/conjugate.cpp.o" "gcc" "src/expr/CMakeFiles/qm_expr.dir/conjugate.cpp.o.d"
  "/root/repo/src/expr/enumerate.cpp" "src/expr/CMakeFiles/qm_expr.dir/enumerate.cpp.o" "gcc" "src/expr/CMakeFiles/qm_expr.dir/enumerate.cpp.o.d"
  "/root/repo/src/expr/eval.cpp" "src/expr/CMakeFiles/qm_expr.dir/eval.cpp.o" "gcc" "src/expr/CMakeFiles/qm_expr.dir/eval.cpp.o.d"
  "/root/repo/src/expr/parse_tree.cpp" "src/expr/CMakeFiles/qm_expr.dir/parse_tree.cpp.o" "gcc" "src/expr/CMakeFiles/qm_expr.dir/parse_tree.cpp.o.d"
  "/root/repo/src/expr/pipeline_model.cpp" "src/expr/CMakeFiles/qm_expr.dir/pipeline_model.cpp.o" "gcc" "src/expr/CMakeFiles/qm_expr.dir/pipeline_model.cpp.o.d"
  "/root/repo/src/expr/traversal.cpp" "src/expr/CMakeFiles/qm_expr.dir/traversal.cpp.o" "gcc" "src/expr/CMakeFiles/qm_expr.dir/traversal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/qm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
