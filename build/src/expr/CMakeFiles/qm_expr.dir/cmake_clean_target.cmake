file(REMOVE_RECURSE
  "libqm_expr.a"
)
