# Empty dependencies file for qm_expr.
# This may be replaced when dependencies are built.
