file(REMOVE_RECURSE
  "CMakeFiles/dfg_graph_test.dir/dfg_graph_test.cpp.o"
  "CMakeFiles/dfg_graph_test.dir/dfg_graph_test.cpp.o.d"
  "dfg_graph_test"
  "dfg_graph_test.pdb"
  "dfg_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfg_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
