# Empty dependencies file for dfg_graph_test.
# This may be replaced when dependencies are built.
