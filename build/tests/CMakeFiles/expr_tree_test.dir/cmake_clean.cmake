file(REMOVE_RECURSE
  "CMakeFiles/expr_tree_test.dir/expr_tree_test.cpp.o"
  "CMakeFiles/expr_tree_test.dir/expr_tree_test.cpp.o.d"
  "expr_tree_test"
  "expr_tree_test.pdb"
  "expr_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
