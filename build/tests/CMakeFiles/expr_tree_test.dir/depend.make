# Empty dependencies file for expr_tree_test.
# This may be replaced when dependencies are built.
