
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/occam_e2e_test.cpp" "tests/CMakeFiles/occam_e2e_test.dir/occam_e2e_test.cpp.o" "gcc" "tests/CMakeFiles/occam_e2e_test.dir/occam_e2e_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/occam/CMakeFiles/qm_occam.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/qm_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/qm_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/qm_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/qm_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/qm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
