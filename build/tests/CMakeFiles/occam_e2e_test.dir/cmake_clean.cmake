file(REMOVE_RECURSE
  "CMakeFiles/occam_e2e_test.dir/occam_e2e_test.cpp.o"
  "CMakeFiles/occam_e2e_test.dir/occam_e2e_test.cpp.o.d"
  "occam_e2e_test"
  "occam_e2e_test.pdb"
  "occam_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occam_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
