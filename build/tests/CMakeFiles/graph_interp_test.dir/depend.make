# Empty dependencies file for graph_interp_test.
# This may be replaced when dependencies are built.
