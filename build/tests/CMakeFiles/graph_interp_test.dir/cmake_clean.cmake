file(REMOVE_RECURSE
  "CMakeFiles/graph_interp_test.dir/graph_interp_test.cpp.o"
  "CMakeFiles/graph_interp_test.dir/graph_interp_test.cpp.o.d"
  "graph_interp_test"
  "graph_interp_test.pdb"
  "graph_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
