# Empty dependencies file for expr_pipeline_test.
# This may be replaced when dependencies are built.
