file(REMOVE_RECURSE
  "CMakeFiles/expr_pipeline_test.dir/expr_pipeline_test.cpp.o"
  "CMakeFiles/expr_pipeline_test.dir/expr_pipeline_test.cpp.o.d"
  "expr_pipeline_test"
  "expr_pipeline_test.pdb"
  "expr_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
