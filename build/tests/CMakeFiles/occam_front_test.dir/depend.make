# Empty dependencies file for occam_front_test.
# This may be replaced when dependencies are built.
