file(REMOVE_RECURSE
  "CMakeFiles/occam_front_test.dir/occam_front_test.cpp.o"
  "CMakeFiles/occam_front_test.dir/occam_front_test.cpp.o.d"
  "occam_front_test"
  "occam_front_test.pdb"
  "occam_front_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occam_front_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
