file(REMOVE_RECURSE
  "CMakeFiles/dfg_sequencing_test.dir/dfg_sequencing_test.cpp.o"
  "CMakeFiles/dfg_sequencing_test.dir/dfg_sequencing_test.cpp.o.d"
  "dfg_sequencing_test"
  "dfg_sequencing_test.pdb"
  "dfg_sequencing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfg_sequencing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
