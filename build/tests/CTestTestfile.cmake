# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/expr_tree_test[1]_include.cmake")
include("/root/repo/build/tests/expr_eval_test[1]_include.cmake")
include("/root/repo/build/tests/expr_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/dfg_graph_test[1]_include.cmake")
include("/root/repo/build/tests/dfg_sequencing_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/pe_test[1]_include.cmake")
include("/root/repo/build/tests/msg_test[1]_include.cmake")
include("/root/repo/build/tests/mp_test[1]_include.cmake")
include("/root/repo/build/tests/occam_front_test[1]_include.cmake")
include("/root/repo/build/tests/occam_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/programs_test[1]_include.cmake")
include("/root/repo/build/tests/graph_interp_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_differential_test[1]_include.cmake")
